#include "runtime/request_queue.hpp"

#include <chrono>
#include <new>
#include <stdexcept>
#include <string>

#include "runtime/control_plane.hpp"
#include "runtime/futex.hpp"
#include "runtime/steal_executor.hpp"

namespace orwl::rt {

RequestQueue::RequestQueue(Arena* arena)
    : arena_(arena ? arena : &Arena::runtime_default()),
      futex_(futex_enabled_from_env()) {
  std::lock_guard lock(mu_);
  cur_ = make_window_locked(kInitialWindowCapacity);
  window_.store(cur_, std::memory_order_release);
}

RequestQueue::~RequestQueue() {
  // Blocks free back to whichever arena produced them (the header
  // routes), so queues that changed arenas mid-life tear down cleanly.
  for (Slot* chunk : slot_chunks_) {
    for (std::size_t i = 0; i < kSlotChunk; ++i) chunk[i].~Slot();
    Arena::deallocate(chunk);
  }
  for (Window* w : windows_) {
    w->~Window();
    Arena::deallocate(w);
  }
}

void RequestQueue::set_arena(Arena* arena) noexcept {
  if (arena != nullptr) arena_.store(arena, std::memory_order_release);
}

void RequestQueue::set_futex(bool on) noexcept {
  futex_ = on && futex_supported();
}

RequestQueue::Window* RequestQueue::make_window_locked(
    std::size_t capacity) {
  // One block: the Window header followed by its slot-pointer array.
  void* mem = arena()->allocate(
      sizeof(Window) + capacity * sizeof(std::atomic<Slot*>),
      alignof(Window));
  auto* slots = reinterpret_cast<std::atomic<Slot*>*>(
      static_cast<std::byte*>(mem) + sizeof(Window));
  for (std::size_t i = 0; i < capacity; ++i) {
    new (&slots[i]) std::atomic<Slot*>(nullptr);
  }
  Window* w = new (mem) Window{capacity - 1, slots};
  windows_.push_back(w);
  return w;
}

Ticket RequestQueue::enqueue_locked(AccessMode mode) {
  if (tail_ - head_ > cur_->mask) grow_locked();
  if (free_slots_.empty()) {
    void* mem = arena()->allocate(kSlotChunk * sizeof(Slot), alignof(Slot));
    Slot* chunk = static_cast<Slot*>(mem);
    for (std::size_t i = 0; i < kSlotChunk; ++i) new (&chunk[i]) Slot();
    slot_chunks_.push_back(chunk);
    for (std::size_t i = 0; i < kSlotChunk; ++i) {
      free_slots_.push_back(&chunk[i]);
    }
  }
  Slot* s = free_slots_.back();
  free_slots_.pop_back();
  const Ticket t = tail_++;
  s->mode = mode;
  s->word.store(pack(t, kWaiting), std::memory_order_relaxed);
  // Release store: a lock-free reader that reaches this slot through the
  // window sees the initialized state word and mode.
  cur_->slots[t & cur_->mask].store(s, std::memory_order_release);
  return t;
}

void RequestQueue::grow_locked() {
  Window* grown = make_window_locked(2 * (cur_->mask + 1));
  for (Ticket u = head_; u < tail_; ++u) {
    grown->slots[u & grown->mask].store(
        cur_->slots[u & cur_->mask].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  cur_ = grown;
  // The old window stays allocated (retired): stale lock-free lookups may
  // still dereference it, and its entries remain correct for every ticket
  // that existed when it was current.
  window_.store(cur_, std::memory_order_release);
}

RequestQueue::Slot* RequestQueue::granted_slot_locked(
    Ticket t) const noexcept {
  if (t < head_ || t >= tail_) return nullptr;
  Slot* s = cur_->slots[t & cur_->mask].load(std::memory_order_relaxed);
  if (s == nullptr) return nullptr;
  if (s->word.load(std::memory_order_relaxed) != pack(t, kGranted)) {
    return nullptr;
  }
  return s;
}

void RequestQueue::release_locked(Ticket t, Slot* s) {
  s->word.store(0, std::memory_order_relaxed);
  cur_->slots[t & cur_->mask].store(nullptr, std::memory_order_relaxed);
  free_slots_.push_back(s);
  // Advance past the tombstones of the released head group. Entries at or
  // beyond grant_cursor_ are ungranted, hence unreleased, hence live — so
  // head_ can never pass grant_cursor_.
  while (head_ < tail_ && cur_->slots[head_ & cur_->mask].load(
                              std::memory_order_relaxed) == nullptr) {
    ++head_;
  }
}

void RequestQueue::grant_one_locked(Ticket t, Slot* s,
                                    std::vector<Slot*>& wake) {
  const std::uint64_t prev =
      s->word.exchange(pack(t, kGranted), std::memory_order_acq_rel);
  grants_.fetch_add(1, std::memory_order_relaxed);
  if ((prev & kPhaseMask) == kParked) wake.push_back(s);
}

bool RequestQueue::grant_some_locked(std::vector<Slot*>& wake) {
  if (head_ == tail_) return false;
  Slot* head_slot =
      cur_->slots[head_ & cur_->mask].load(std::memory_order_relaxed);
  if (head_slot->mode == AccessMode::Write) {
    if (grant_cursor_ != head_) return false;  // writer already granted
    grant_one_locked(head_, head_slot, wake);
    ++grant_cursor_;
    return true;
  }
  // Reader sharing: the leading run [head_, grant_cursor_) is already
  // granted reads; extend the group over every contiguous read behind it.
  bool any = false;
  while (grant_cursor_ < tail_) {
    Slot* s = cur_->slots[grant_cursor_ & cur_->mask].load(
        std::memory_order_relaxed);
    if (s->mode != AccessMode::Read) break;
    grant_one_locked(grant_cursor_, s, wake);
    ++grant_cursor_;
    any = true;
  }
  return any;
}

bool RequestQueue::hand_off_locked(std::vector<Slot*>& wake) {
  if (control_ != nullptr) {
    // Decentralized hand-off: a control thread of our shard performs the
    // grant. Only post when the new head group actually has an ungranted
    // request (head_ == grant_cursor_): a partially released reader group
    // cannot admit the writer behind it yet, and an empty queue has no one
    // to thaw. post() is safe in every plane state — it grants inline when
    // the plane is stopped, stopping, or the shard is saturated — so a
    // release racing ControlPlane::stop() can never strand a waiter.
    return head_ == grant_cursor_ && head_ != tail_;
  }
  grant_some_locked(wake);
  return false;
}

Ticket RequestQueue::enqueue(AccessMode mode) {
  std::vector<Slot*> wake;
  Ticket t;
  {
    std::lock_guard lock(mu_);
    t = enqueue_locked(mode);
    pending_.fetch_add(1, std::memory_order_relaxed);
    grant_some_locked(wake);
  }
  wake_parked(wake);
  return t;
}

void RequestQueue::acquire(Ticket t) {
  // Lock-free fast path: the grant was already published.
  const Window* w = window_.load(std::memory_order_acquire);
  const Slot* s = w->slots[t & w->mask].load(std::memory_order_acquire);
  if (s != nullptr &&
      s->word.load(std::memory_order_acquire) == pack(t, kGranted)) {
    return;
  }
  acquire_slow(t);
}

void RequestQueue::throw_acquire_timeout(Ticket t) const {
  std::string msg = "RequestQueue::acquire: ticket " + std::to_string(t) +
                    " on " + (tag_.empty() ? "untagged queue" : tag_) +
                    " timed out after " + std::to_string(timeout_ms_) +
                    " ms waiting for grant (likely a deadlocked access "
                    "protocol)";
  throw std::runtime_error(msg);
}

void RequestQueue::acquire_slow(Ticket t) {
  Slot* s = nullptr;
  {
    std::lock_guard lock(mu_);
    if (t >= head_ && t < tail_) {
      s = cur_->slots[t & cur_->mask].load(std::memory_order_relaxed);
    }
    if (s == nullptr ||
        (s->word.load(std::memory_order_relaxed) >> kPhaseBits) != t) {
      throw std::runtime_error("RequestQueue::acquire: unknown ticket");
    }
    if (s->word.load(std::memory_order_relaxed) == pack(t, kGranted)) {
      return;
    }
  }
  // Blocked on the lock with a steal session live: lend this PU to the
  // executor instead of parking it. lend() runs stolen items until the
  // grant lands (the give-up predicate below), the session quiesces, or
  // the caller is not lendable (nested block, ORWL_STEAL=off).
  if (StealExecutor* ex = StealExecutor::current()) {
    ex->lend([s, t] {
      return s->word.load(std::memory_order_acquire) == pack(t, kGranted);
    });
    if (s->word.load(std::memory_order_acquire) == pack(t, kGranted)) {
      return;
    }
  }
  if (futex_) {
    acquire_parked_futex(t, s);
  } else {
    acquire_parked_condvar(t, s);
  }
}

void RequestQueue::acquire_parked_futex(Ticket t, Slot* s) {
  // Announce the parking with a bare CAS — no lock. The granter's
  // exchange either happens first (we observe kGranted below) or sees
  // kParked and then bumps seq before waking; our wait loop reads seq
  // *before* re-checking the word, so a grant between the re-check and
  // the futex_wait makes the wait return immediately (seq changed).
  std::uint64_t expected = pack(t, kWaiting);
  if (!s->word.compare_exchange_strong(expected, pack(t, kParked),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    if (expected == pack(t, kGranted)) return;
    if (expected != pack(t, kParked)) {
      throw std::runtime_error("RequestQueue::acquire: unknown ticket");
    }
    // Already parked: a previous acquire of this ticket timed out and left
    // the announcement in place. Fall through and wait for the grant.
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms_);
  for (;;) {
    const std::uint32_t seq = s->seq.load(std::memory_order_acquire);
    if (s->word.load(std::memory_order_acquire) == pack(t, kGranted)) {
      return;
    }
    std::int64_t remaining_ms = 0;  // 0 = wait forever
    if (timeout_ms_ != 0) {
      remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline - std::chrono::steady_clock::now())
                         .count();
      if (remaining_ms <= 0) remaining_ms = 1;  // one last short wait
    }
    futex_waits_.fetch_add(1, std::memory_order_relaxed);
    if (!futex_wait(s->seq, seq, remaining_ms)) {
      if (s->word.load(std::memory_order_acquire) == pack(t, kGranted)) {
        return;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        throw_acquire_timeout(t);
      }
    }
    // Spurious return, seq changed, or a wake for a recycled slot:
    // re-check the predicate and keep waiting.
  }
}

void RequestQueue::acquire_parked_condvar(Ticket t, Slot* s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms_);
  std::unique_lock park(s->park_mu);
  // Announce the parking while holding park_mu: the granter's exchange
  // either happens first (we observe kGranted here) or sees kParked and
  // serializes on park_mu before notifying, so the wakeup cannot be lost.
  std::uint64_t expected = pack(t, kWaiting);
  if (!s->word.compare_exchange_strong(expected, pack(t, kParked),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    if (expected == pack(t, kGranted)) return;
    if (expected != pack(t, kParked)) {
      throw std::runtime_error("RequestQueue::acquire: unknown ticket");
    }
    // Already parked: a previous acquire of this ticket timed out and left
    // the announcement in place. Fall through and wait for the grant.
  }
  for (;;) {
    if (s->word.load(std::memory_order_acquire) == pack(t, kGranted)) {
      return;
    }
    if (timeout_ms_ == 0) {
      s->park_cv.wait(park);
    } else if (s->park_cv.wait_until(park, deadline) ==
               std::cv_status::timeout) {
      if (s->word.load(std::memory_order_acquire) == pack(t, kGranted)) {
        return;
      }
      throw_acquire_timeout(t);
    }
  }
}

bool RequestQueue::granted(Ticket t) const {
  const Window* w = window_.load(std::memory_order_acquire);
  const Slot* s = w->slots[t & w->mask].load(std::memory_order_acquire);
  return s != nullptr &&
         s->word.load(std::memory_order_acquire) == pack(t, kGranted);
}

void RequestQueue::release(Ticket t) {
  std::vector<Slot*> wake;
  bool post;
  {
    std::lock_guard lock(mu_);
    Slot* s = granted_slot_locked(t);
    if (s == nullptr) {
      throw std::logic_error("RequestQueue::release: ticket not granted");
    }
    release_locked(t, s);
    pending_.fetch_sub(1, std::memory_order_relaxed);
    post = hand_off_locked(wake);
  }
  if (post) {
    control_->post(this, control_shard_.load(std::memory_order_relaxed));
  }
  wake_parked(wake);
}

Ticket RequestQueue::reinsert_and_release(Ticket t, AccessMode mode) {
  std::vector<Slot*> wake;
  Ticket fresh;
  bool post;
  {
    std::lock_guard lock(mu_);
    Slot* s = granted_slot_locked(t);
    if (s == nullptr) {
      throw std::logic_error(
          "RequestQueue::reinsert_and_release: ticket not granted");
    }
    fresh = enqueue_locked(mode);
    release_locked(t, s);
    // pending_ is unchanged: the insert and the release cancel out.
    post = hand_off_locked(wake);
  }
  if (post) {
    control_->post(this, control_shard_.load(std::memory_order_relaxed));
  }
  wake_parked(wake);
  return fresh;
}

void RequestQueue::wake_parked(const std::vector<Slot*>& wake) {
  for (Slot* s : wake) {
    if (futex_) {
      // The grant (word exchange) happened before this seq bump; a waiter
      // that read the old seq re-checks the word and returns, one that
      // read the new seq sees EAGAIN from the kernel. Either way no
      // mutex is touched on the hand-off path.
      s->seq.fetch_add(1, std::memory_order_release);
      futex_wake(s->seq, /*all=*/true);
      futex_wakes_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Empty critical section: a parked owner holds park_mu from its state
    // transition until it enters the condvar wait, so locking here ensures
    // the notify cannot slip into that gap. A slot recycled in the
    // meantime at worst receives a spurious (predicate-checked) wakeup.
    { std::lock_guard guard(s->park_mu); }
    s->park_cv.notify_all();
  }
}

void RequestQueue::grant_from_control() {
  // Grant-time data transfer happens first, outside the queue mutex: the
  // hook may migrate the location's pages, and the grantee must find them
  // on the right node when it wakes.
  if (hook_ != nullptr) hook_->before_grant();
  std::vector<Slot*> wake;
  {
    std::lock_guard lock(mu_);
    grant_some_locked(wake);
  }
  wake_parked(wake);
}

}  // namespace orwl::rt
