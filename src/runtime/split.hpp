// The orwl_split primitive: data-parallel decomposition of one location.
//
// "An orwl_split primitive helps to split the data of a location into
// several pieces that can be processed in parallel by other tasks or
// operations." (Sec. V-C)
//
// In this runtime the split is expressed with the existing primitives:
// every worker task inserts a *read* handle on the parent location —
// ORWL's reader sharing grants all workers simultaneously — and each
// worker processes only its slice, writing results to its own location.
// The merge task then reads all worker locations. This header provides
// the slice arithmetic; see apps/video_app.cpp for the wiring idiom.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>

namespace orwl::rt {

struct SliceRange {
  std::size_t begin;
  std::size_t end;  ///< exclusive
  std::size_t size() const noexcept { return end - begin; }
};

/// Slice `idx` of [0, total) split into `parts` near-equal contiguous
/// pieces; the first (total % parts) slices are one element longer.
inline SliceRange split_range(std::size_t total, std::size_t parts,
                              std::size_t idx) {
  if (parts == 0 || idx >= parts) {
    throw std::invalid_argument("split_range: bad part index");
  }
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t begin = idx * base + std::min(idx, extra);
  const std::size_t len = base + (idx < extra ? 1 : 0);
  return SliceRange{begin, begin + len};
}

}  // namespace orwl::rt
