// rt::StealExecutor — topology-aware work stealing with hierarchical
// termination detection.
//
// The runtime's task model is static: one thread per declared task. For
// irregular work (graph frontiers, dynamic inserts) that leaves whole
// sockets idle while one PU drains a hot worklist. The executor gives
// every participating worker a bounded Chase–Lev deque (StealDeque,
// arena-backed so the slots live on the worker's NUMA node) and a
// precomputed locality-ordered victim list (topo::VictimTable):
// hyperthread sibling first, then same-core, same-node, and remote-node
// PUs last — so a steal is served from the closest non-empty deque.
//
// Termination is detected hierarchically, following the topology tree:
// each worker contributes to a per-NUMA-node active counter; only a
// node's 0<->1 transitions touch the root counter, so quiescence folds
// up the tree instead of every worker hammering one global atomic.
// The protocol keeps one invariant: a worker is *active* from before it
// takes an item (own pop or steal) until its own deque and local
// overflow are empty and a full victim sweep found nothing. A worker
// exits only when the root count is zero AND its own deque is empty, so
// no seeded or pushed item can be abandoned.
//
// Lock-blocked lending: a task thread blocked in RequestQueue's slow
// path can lend its PU to the executor (lend()) instead of parking
// immediately — it steals and runs items until its grant arrives or a
// spin budget runs out. Items executed under lending must not acquire
// ORWL locks themselves (a nested block would park on the lender's
// stack and stall the loan; the acquire path refuses nested lending).
//
// Knobs (resolved by the program layer; the executor takes a Config):
//   ORWL_STEAL      = off|node|all  — no stealing / same-NUMA-node
//                     victims only / full victim order (default all).
//   ORWL_STEAL_SPIN = N             — fruitless victim sweeps before a
//                     worker parks (default 64).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/steal_deque.hpp"
#include "topo/topology.hpp"
#include "topo/victim.hpp"

namespace orwl::rt {

class CommMeter;

/// Steal policy (ORWL_STEAL / ProgramOptions::steal).
enum class StealMode {
  Off,      ///< no stealing: each worker drains only its own deque
  Node,     ///< steal from same-NUMA-node victims only
  All,      ///< full locality order, remote nodes last (default)
  FromEnv,  ///< follow ORWL_STEAL
};

const char* to_string(StealMode m) noexcept;

/// Environment override for the steal policy ("off", "node", "all").
inline constexpr const char* kStealEnvVar = "ORWL_STEAL";

/// Fruitless victim sweeps before a worker parks (default 64).
inline constexpr const char* kStealSpinEnvVar = "ORWL_STEAL_SPIN";

/// Resolve FromEnv against ORWL_STEAL (ProgramOptions beats env, so an
/// explicit mode passes through unchanged). Default: All.
StealMode resolve_steal_mode(StealMode from_options);

/// Resolve a 0 spin budget against ORWL_STEAL_SPIN. Default: 64.
std::size_t resolve_steal_spin(std::size_t from_options);

class StealExecutor {
 public:
  class WorkerContext;

  /// A work item's body: the 64-bit payload plus the executing worker's
  /// context (for pushing follow-up items).
  using ItemFn = std::function<void(std::uint64_t, WorkerContext&)>;

  struct Config {
    StealMode mode = StealMode::All;  ///< Off/Node/All (FromEnv invalid here)
    std::size_t spin = 64;            ///< fruitless sweeps before parking
    std::size_t deque_capacity = 8192;
  };

  /// One participating worker: the logical PU it runs on (drives the
  /// victim order and the termination-tree node) and the arena its
  /// deque slots come from (null = the process-wide default arena).
  struct WorkerSpec {
    int pu = 0;
    Arena* arena = nullptr;
  };

  /// Context handed to every item body and owned by the executing
  /// thread. push() never loses an item: it lands in the worker's deque
  /// when there is room, else in a thread-local overflow drained before
  /// the next pop/steal.
  class WorkerContext {
   public:
    /// Push a follow-up work item (runnable by any worker).
    void push(std::uint64_t item);

    /// Index of the executing worker; workers() for lenders (threads
    /// lending a blocked PU have no deque of their own).
    std::size_t worker() const noexcept { return worker_; }

   private:
    friend class StealExecutor;
    WorkerContext(StealExecutor& ex, std::size_t worker, StealDeque* deque)
        : ex_(&ex), worker_(worker), deque_(deque) {}

    StealExecutor* ex_;
    std::size_t worker_;
    StealDeque* deque_;  ///< null for lenders
    std::vector<std::uint64_t> overflow_;
  };

  /// Counter snapshot (surfaced as ProgramStats::steal_* and bench JSON).
  struct Stats {
    std::uint64_t executed = 0;       ///< items run, by anyone
    std::uint64_t local_steals = 0;   ///< steals from a same-node victim
    std::uint64_t remote_steals = 0;  ///< steals across NUMA nodes
    std::uint64_t lend_executed = 0;  ///< items run by lock-blocked lenders
    std::uint64_t parks = 0;          ///< worker sleeps after a spin budget
  };

  /// \param t       Topology the victim order and termination tree are
  ///                derived from; must outlive the executor.
  /// \param workers One entry per participating worker (>= 1).
  /// \param cfg     Resolved policy knobs (mode must not be FromEnv).
  StealExecutor(const topo::Topology& t, std::vector<WorkerSpec> workers,
                Config cfg);
  ~StealExecutor();

  StealExecutor(const StealExecutor&) = delete;
  StealExecutor& operator=(const StealExecutor&) = delete;

  std::size_t workers() const noexcept { return state_.size(); }
  StealMode mode() const noexcept { return cfg_.mode; }

  /// Pre-run seeding of worker `w`'s deque (not thread-safe against a
  /// running session; call before the workers start).
  void seed(std::size_t w, std::uint64_t item);

  /// Publish `fn` as the session body and register this executor as the
  /// process-wide lending target (StealExecutor::current). One session
  /// at a time per process; a concurrent second session simply runs
  /// without lenders. `fn` must outlive the session.
  void begin_session(const ItemFn& fn);
  void end_session();

  /// Participate as worker `w` until global termination: drain own
  /// work, steal by the victim order, park after `spin` fruitless
  /// sweeps, exit when the termination tree is quiescent. Every worker
  /// passed at construction must eventually call this once per session,
  /// or seeded items on its deque may go unexecuted.
  void run_worker(std::size_t w, const ItemFn& fn);

  /// Lend the calling (lock-blocked) thread to the steal loop: run
  /// items until `give_up` returns true, the spin budget is exhausted,
  /// the session ends, or the executor goes quiescent.
  /// \return Number of items executed by this loan.
  std::uint64_t lend(const std::function<bool()>& give_up);

  /// The executor of the process-wide active session (lending target);
  /// null when no session is active.
  static StealExecutor* current() noexcept;

  /// Bytes one steal charges to the measured comm matrix: the stolen
  /// item's 8-byte payload plus the cache line its working set drags
  /// across on first touch. A deliberate floor — a steal moves at least
  /// this much, and the re-placement trigger compares *shapes*, not
  /// absolute volumes.
  static constexpr std::uint64_t kStealBytes = 64;

  /// Feed successful steals into `meter` (null detaches): each one is a
  /// hand-off of the stolen item from the victim's task to the thief's,
  /// recorded as (victim → thief, kStealBytes, remote = cross-node). With
  /// this, a for_each whose items keep flowing across NUMA nodes skews
  /// the measured matrix exactly like lock hand-offs do, so sustained
  /// cross-node stealing can trip the ORWL_REPLACE divergence trigger.
  /// Only workers with task identity record (index < num_tasks; lenders
  /// have none). Thread-compatible with a running session: the pointer
  /// is read with acquire on each steal.
  void set_meter(CommMeter* meter, std::size_t num_tasks) noexcept;

  Stats stats() const noexcept;

 private:
  struct alignas(64) WorkerState {
    StealDeque* deque = nullptr;  ///< arena-backed, freed via header
    int pu = 0;
    int node = 0;  ///< termination-tree node (0 on NUMA-less machines)
    std::vector<std::uint32_t> victims;     ///< worker indices, nearest first
    std::size_t local_victims = 0;          ///< prefix on the same node
    std::vector<std::uint64_t> seed_spill;  ///< seeds past deque capacity
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> local_steals{0};
    std::atomic<std::uint64_t> remote_steals{0};
    std::atomic<std::uint64_t> parks{0};
  };

  struct alignas(64) NodeCounter {
    std::atomic<std::int64_t> active{0};
  };

  void activate(int node) noexcept;
  void deactivate(int node) noexcept;
  bool quiescent() const noexcept {
    return root_active_.load(std::memory_order_acquire) == 0;
  }

  /// Wake parked workers after a push (cheap no-op when nobody parks).
  void notify_work() noexcept;

  /// One locality-ordered pass over `order`; on success the item plus
  /// its victim's node and worker index are written through the
  /// out-params.
  bool sweep(const std::vector<std::uint32_t>& order, std::size_t limit,
             std::uint64_t& item, int& victim_node,
             std::uint32_t& victim_worker) noexcept;

  /// Record a successful steal on the attached meter (no-op without
  /// one, or when either side lacks task identity).
  void meter_steal(std::size_t thief, std::uint32_t victim,
                   bool remote) noexcept;

  void execute(const ItemFn& fn, std::uint64_t item, WorkerContext& ctx);

  Config cfg_;
  std::vector<std::unique_ptr<WorkerState>> state_;

  std::vector<NodeCounter> node_active_;  ///< one per NUMA node (>= 1)
  alignas(64) std::atomic<std::int64_t> root_active_{0};

  alignas(64) std::atomic<std::uint32_t> work_seq_{0};
  std::atomic<int> parked_{0};
  const bool use_futex_;

  /// Session state: the body lenders run, null between sessions.
  std::atomic<const ItemFn*> session_fn_{nullptr};

  std::atomic<std::uint64_t> lend_executed_{0};

  /// Steal-traffic sink (see set_meter); tasks_ bounds which worker
  /// indices carry task identity.
  std::atomic<CommMeter*> meter_{nullptr};
  std::atomic<std::size_t> meter_tasks_{0};

  /// Victim order used by lenders (all workers, round-robin rotation
  /// applied per loan so concurrent lenders fan out).
  std::vector<std::uint32_t> lender_victims_;
  std::atomic<std::uint32_t> lender_rotation_{0};
};

}  // namespace orwl::rt
