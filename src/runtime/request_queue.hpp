// The per-location FIFO of read/write requests — the heart of the ORWL
// synchronization model.
//
// "The model presents the concurrent access to a resource/location by
// using a FIFO that holds requests (requested, allocated, released) issued
// by the tasks. The FIFO controls the access order and locks and maps the
// resource for some threads either exclusively (for a writer) or shared
// (for a set of readers)." (Sec. III)
//
// Grant rule: the request at the head of the FIFO is granted; when the
// head is a read request, the maximal run of consecutive read requests at
// the head is granted together (reader sharing). Requests are removed at
// release time, after which the new head group is granted — either inline
// or, when a ControlPlane is attached, by a dedicated control thread
// (reproducing ORWL's decentralized event-based hand-off).
//
// Implementation: an O(1) targeted-wakeup grant engine. Tickets are dense
// uint64s starting at 1, so the live requests always occupy the window
// [head_, tail_) and `ticket & mask` addresses a slot directly — no queue
// scan anywhere. Each request lives in a reusable Slot whose atomic state
// word packs (ticket << 2) | phase; grants are published by flipping that
// word, which makes granted() and the already-granted acquire() fast path
// lock-free. Blocked acquirers park on their own slot's futex word
// (ORWL_FUTEX=1, the default — see runtime/futex.hpp) or mutex/condvar
// pair (ORWL_FUTEX=0, and the portability fallback), and only the newly
// granted writer — or exactly the parked members of a newly granted
// reader group — are woken (no broadcast). The slot window grows by
// doubling; superseded windows are retired, never freed, so stale
// lock-free lookups stay safe (the state-word ticket check rejects them).
//
// Memory: windows and slot chunks come from the queue's rt::Arena (the
// arena of the control shard serving this queue, node-bound) — nothing
// on the grant path touches the global heap after warm-up.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/types.hpp"

namespace orwl::rt {

class ControlPlane;

/// Callback invoked on the grant hand-off path, right before the new head
/// group of a queue is granted and its waiters are woken.
///
/// This is the runtime's hook for the second half of the paper's control
/// threads — "manage lock synchronization *and data transfer*"
/// (Sec. IV-A): a Location installs itself here so that the control
/// thread serving the queue's shard can migrate the location's pages
/// NUMA-locally before thawing the grantee. The hook runs outside the
/// queue mutex, on whichever thread performs the hand-off (a control
/// thread, or the posting thread for inline grants), and must be
/// non-blocking-ish and noexcept: a slow hook delays exactly the waiters
/// it is trying to get good memory for.
class GrantHook {
 public:
  virtual ~GrantHook() = default;

  /// Called once per hand-off grant pass of the attached queue.
  virtual void before_grant() noexcept = 0;
};

class RequestQueue {
 public:
  /// `arena` backs the slot window and slot chunks (null = the process
  /// fallback arena). Futex parking defaults to ORWL_FUTEX (on, Linux).
  explicit RequestQueue(Arena* arena = nullptr);
  ~RequestQueue();
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Switch future window/slot allocations to `arena` (null ignored).
  /// Thread-safe: the Program re-points queues at their new shard's
  /// arena on re-placement, possibly while requests are in flight;
  /// existing blocks free back to the arena that made them.
  void set_arena(Arena* arena) noexcept;
  Arena* arena() const noexcept {
    return arena_.load(std::memory_order_acquire);
  }

  /// Force futex (true) or mutex+condvar (false) parking, overriding
  /// ORWL_FUTEX — test hook. Forced back off where futexes are
  /// unsupported. Not thread-safe; set before concurrent use.
  void set_futex(bool on) noexcept;
  bool futex_parking() const noexcept { return futex_; }

  /// Parking-path statistics (ProgramStats::futex_*). Lock-free.
  std::uint64_t futex_waits() const noexcept {
    return futex_waits_.load(std::memory_order_relaxed);
  }
  std::uint64_t futex_wakes() const noexcept {
    return futex_wakes_.load(std::memory_order_relaxed);
  }

  /// Attach the control plane that performs grant hand-off. May be null
  /// (inline grants). Not thread-safe; call before concurrent use.
  void set_control_plane(ControlPlane* cp) noexcept { control_ = cp; }

  /// Route this queue's hand-off events to the given control-plane shard
  /// (the shard nearest the PUs of the queue's waiters). Thread-safe: the
  /// Program re-routes queues when a placement is computed, possibly while
  /// releases are in flight.
  void set_control_shard(std::size_t shard) noexcept {
    control_shard_.store(static_cast<std::uint32_t>(shard),
                         std::memory_order_relaxed);
  }
  std::size_t control_shard() const noexcept {
    return control_shard_.load(std::memory_order_relaxed);
  }

  /// Milliseconds after which acquire() throws (deadlock guard).
  /// 0 disables the guard. Not thread-safe; set before concurrent use.
  void set_acquire_timeout(std::uint64_t ms) noexcept { timeout_ms_ = ms; }

  /// Human-readable identity of this queue, prefixed to every timeout /
  /// protocol error ("location 7 (owner task 3, slot 1, tenant 'video')").
  /// The Program composes it from the location's coordinates and the
  /// owning tenant's tag. Not thread-safe; set before concurrent use.
  void set_tag(std::string tag) { tag_ = std::move(tag); }
  const std::string& tag() const noexcept { return tag_; }

  /// Install the hook run before each hand-off grant (grant-time data
  /// transfer). May be null (no hook). Not thread-safe; set before
  /// concurrent use. The hook fires on the control-plane hand-off path
  /// only — enqueue-time grants (a request landing in an already-eligible
  /// head group) are the requester's own first access and need no
  /// transfer.
  void set_grant_hook(GrantHook* hook) noexcept { hook_ = hook; }

  /// Append a request; returns its ticket. Grants immediately when the
  /// request lands in the eligible head group.
  Ticket enqueue(AccessMode mode);

  /// Block until the ticket is granted. Lock-free when the grant already
  /// happened. Throws std::runtime_error on timeout (likely protocol
  /// deadlock) or unknown ticket.
  void acquire(Ticket t);

  /// True when the ticket is already granted (non-blocking, lock-free).
  bool granted(Ticket t) const;

  /// Remove a granted request and hand the resource to the next group.
  /// Throws std::logic_error when the ticket is absent or not granted.
  void release(Ticket t);

  /// Atomically enqueue a new request of the same mode and release the
  /// given one. Implements the iterative handle ("Before its termination,
  /// such a section introduces a new query in the FIFO that requests the
  /// resource for the next iteration"). Returns the new ticket. Takes the
  /// queue mutex exactly once.
  Ticket reinsert_and_release(Ticket t, AccessMode mode);

  /// Number of requests currently queued (granted included). Lock-free.
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Statistics: total grants performed (for tests and benches). Lock-free.
  std::uint64_t total_grants() const noexcept {
    return grants_.load(std::memory_order_relaxed);
  }

 private:
  friend class ControlPlane;

  // Phase of a slot's state word: word == (ticket << kPhaseBits) | phase.
  // A word of 0 marks a free slot (ticket 0 is never issued).
  static constexpr std::uint64_t kWaiting = 0;  ///< queued, owner not parked
  static constexpr std::uint64_t kParked = 1;   ///< owner blocked in acquire
  static constexpr std::uint64_t kGranted = 2;  ///< lock held by owner
  static constexpr unsigned kPhaseBits = 2;
  static constexpr std::uint64_t kPhaseMask = (1u << kPhaseBits) - 1;

  static constexpr std::uint64_t pack(Ticket t, std::uint64_t phase) {
    return (t << kPhaseBits) | phase;
  }

  /// One request cell. Slots are arena-owned (stable addresses for the
  /// lifetime of the queue) and recycled through a freelist at release.
  /// `seq` is the futex parking word; park_mu/park_cv serve the
  /// ORWL_FUTEX=0 path.
  struct Slot {
    std::atomic<std::uint64_t> word{0};
    AccessMode mode = AccessMode::Read;  ///< written under mu_ at enqueue
    std::atomic<std::uint32_t> seq{0};   ///< bumped per wake (futex path)
    std::mutex park_mu;
    std::condition_variable park_cv;
  };

  /// Ticket -> slot map for the live window: slot(t) = slots[t & mask].
  /// The header and its trailing slot-pointer array live in one arena
  /// block. Windows are published through window_ and retired (kept
  /// allocated) when outgrown, so lock-free readers holding a stale
  /// window still dereference valid memory; the state-word ticket check
  /// rejects any aliased slot.
  struct Window {
    const std::uint64_t mask;
    std::atomic<Slot*>* slots;  ///< trailing array in the same block
  };

  static constexpr std::size_t kInitialWindowCapacity = 16;

  static constexpr std::size_t kSlotChunk = 8;  ///< slots per slab block

  // ---- all helpers below require mu_ held -------------------------------

  /// Appends the request and returns its ticket; the caller adjusts
  /// pending_ (reinsert_and_release's +1/-1 pair cancels out).
  Ticket enqueue_locked(AccessMode mode);
  Window* make_window_locked(std::size_t capacity);
  void grow_locked();
  /// The slot of `t` when it is live and granted, else nullptr.
  Slot* granted_slot_locked(Ticket t) const noexcept;
  void release_locked(Ticket t, Slot* s);
  /// Grant the eligible head group (Sec. III rule); parked slots needing a
  /// wakeup are appended to `wake`. Returns true when anything was granted.
  bool grant_some_locked(std::vector<Slot*>& wake);
  void grant_one_locked(Ticket t, Slot* s, std::vector<Slot*>& wake);
  /// After a release: true when a control-plane post must happen once the
  /// queue mutex is dropped (the new head group is actually grantable);
  /// grants inline when no control plane is attached.
  bool hand_off_locked(std::vector<Slot*>& wake);

  // ---- lock-free paths ---------------------------------------------------

  void acquire_slow(Ticket t);
  void acquire_parked_futex(Ticket t, Slot* s);
  void acquire_parked_condvar(Ticket t, Slot* s);
  void wake_parked(const std::vector<Slot*>& wake);

  /// The deadlock-guard error, with enough context to find the stuck
  /// protocol: queue tag (location + tenant), ticket, configured timeout.
  [[noreturn]] void throw_acquire_timeout(Ticket t) const;

  /// Entry point used by control threads to perform the hand-off.
  void grant_from_control();

  std::mutex mu_;
  Ticket head_ = 1;          ///< oldest live ticket (== tail_ when empty)
  Ticket tail_ = 1;          ///< next ticket to issue
  Ticket grant_cursor_ = 1;  ///< one past the last granted ticket
  Window* cur_ = nullptr;    ///< current window (same object window_ holds)
  std::vector<Window*> windows_;      ///< current + retired (arena blocks)
  std::vector<Slot*> slot_chunks_;    ///< stable slot storage (arena blocks)
  std::vector<Slot*> free_slots_;

  std::atomic<const Window*> window_{nullptr};  ///< lock-free lookup handle
  std::atomic<std::uint64_t> grants_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> futex_waits_{0};
  std::atomic<std::uint64_t> futex_wakes_{0};

  std::atomic<Arena*> arena_;  ///< allocation source (re-pointed on route)
  bool futex_;                 ///< futex vs condvar parking
  std::uint64_t timeout_ms_ = 120000;
  std::string tag_;
  GrantHook* hook_ = nullptr;
  ControlPlane* control_ = nullptr;
  std::atomic<std::uint32_t> control_shard_{0};
};

}  // namespace orwl::rt
