// The per-location FIFO of read/write requests — the heart of the ORWL
// synchronization model.
//
// "The model presents the concurrent access to a resource/location by
// using a FIFO that holds requests (requested, allocated, released) issued
// by the tasks. The FIFO controls the access order and locks and maps the
// resource for some threads either exclusively (for a writer) or shared
// (for a set of readers)." (Sec. III)
//
// Grant rule: the request at the head of the FIFO is granted; when the
// head is a read request, the maximal run of consecutive read requests at
// the head is granted together (reader sharing). Requests are removed at
// release time, after which the new head group is granted — either inline
// or, when a ControlPlane is attached, by a dedicated control thread
// (reproducing ORWL's decentralized event-based hand-off).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "runtime/types.hpp"

namespace orwl::rt {

class ControlPlane;

class RequestQueue {
 public:
  RequestQueue() = default;
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Attach the control plane that performs grant hand-off. May be null
  /// (inline grants). Not thread-safe; call before concurrent use.
  void set_control_plane(ControlPlane* cp) noexcept { control_ = cp; }

  /// Route this queue's hand-off events to the given control-plane shard
  /// (the shard nearest the PUs of the queue's waiters). Thread-safe: the
  /// Program re-routes queues when a placement is computed, possibly while
  /// releases are in flight.
  void set_control_shard(std::size_t shard) noexcept {
    control_shard_.store(static_cast<std::uint32_t>(shard),
                         std::memory_order_relaxed);
  }
  std::size_t control_shard() const noexcept {
    return control_shard_.load(std::memory_order_relaxed);
  }

  /// Milliseconds after which acquire() throws (deadlock guard).
  /// 0 disables the guard. Not thread-safe; set before concurrent use.
  void set_acquire_timeout(std::uint64_t ms) noexcept { timeout_ms_ = ms; }

  /// Append a request; returns its ticket. Grants immediately when the
  /// request lands in the eligible head group.
  Ticket enqueue(AccessMode mode);

  /// Block until the ticket is granted. Throws std::runtime_error on
  /// timeout (likely protocol deadlock) or unknown ticket.
  void acquire(Ticket t);

  /// True when the ticket is already granted (non-blocking).
  bool granted(Ticket t) const;

  /// Remove a granted request and hand the resource to the next group.
  /// Throws std::logic_error when the ticket is absent or not granted.
  void release(Ticket t);

  /// Atomically enqueue a new request of the same mode and release the
  /// given one. Implements the iterative handle ("Before its termination,
  /// such a section introduces a new query in the FIFO that requests the
  /// resource for the next iteration"). Returns the new ticket.
  Ticket reinsert_and_release(Ticket t, AccessMode mode);

  /// Number of requests currently queued (granted included).
  std::size_t pending() const;

  /// Statistics: total grants performed (for tests and benches).
  std::uint64_t total_grants() const noexcept { return grants_; }

 private:
  friend class ControlPlane;

  struct Entry {
    Ticket ticket;
    AccessMode mode;
    bool granted = false;
  };

  /// Grant the eligible head group; returns true when anything new was
  /// granted. Caller holds mu_.
  bool grant_head_locked();

  /// Entry point used by control threads to perform the hand-off.
  void grant_from_control();

  /// After a release: either post to the control plane or grant inline.
  void hand_off_locked(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> q_;
  Ticket next_ticket_ = 1;
  std::uint64_t grants_ = 0;
  std::uint64_t timeout_ms_ = 120000;
  ControlPlane* control_ = nullptr;
  std::atomic<std::uint32_t> control_shard_{0};
};

}  // namespace orwl::rt
