#include "runtime/fifo.hpp"

#include <stdexcept>
#include <string>

namespace orwl::rt {

namespace {

void check_adoptable(const std::vector<Handle2*>& handles, bool linked,
                     const char* who) {
  if (linked) {
    throw std::logic_error(std::string(who) + ": already linked");
  }
  if (handles.size() < 2) {
    throw std::invalid_argument(std::string(who) +
                                ": adopt needs a ring of >= 2 handles");
  }
  for (const Handle2* h : handles) {
    if (h == nullptr || !h->linked()) {
      throw std::invalid_argument(
          std::string(who) + ": adopted handles must be inserted already");
    }
  }
}

}  // namespace

void FifoProducer::link(TaskContext& ctx, TaskId owner,
                        std::size_t first_slot, std::size_t depth,
                        std::size_t bytes) {
  if (depth < 2) {
    throw std::invalid_argument("FifoProducer: depth must be >= 2");
  }
  if (!handles_.empty()) {
    throw std::logic_error("FifoProducer: already linked");
  }
  // The channel's metadata follows its first backing location's queue
  // arena (node-local to the grant engine serving the ring).
  Arena* arena = ctx.location(owner, first_slot).queue().arena();
  handles_ = decltype(handles_)(ArenaAllocator<Handle2*>(arena));
  owned_ = decltype(owned_)(ArenaAllocator<ArenaPtr<Handle2>>(arena));
  for (std::size_t s = 0; s < depth; ++s) {
    Location& loc = ctx.location(owner, first_slot + s);
    if (ctx.id() == owner) loc.scale(bytes);
    ArenaPtr<Handle2> h(arena_new<Handle2>(*arena));
    h->write_insert(ctx, loc, /*priority=*/0);
    handles_.push_back(h.get());
    owned_.push_back(std::move(h));
  }
}

void FifoProducer::adopt(std::vector<Handle2*> handles) {
  check_adoptable(handles, !handles_.empty(), "FifoProducer");
  Arena* arena = handles[0]->location()->queue().arena();
  handles_ = decltype(handles_)(ArenaAllocator<Handle2*>(arena));
  handles_.assign(handles.begin(), handles.end());
}

std::span<std::byte> FifoProducer::begin_push() {
  if (handles_.empty()) throw std::logic_error("FifoProducer: not linked");
  if (open_) throw std::logic_error("FifoProducer: push already open");
  handles_[next_]->acquire();
  open_ = true;
  return handles_[next_]->write_map();
}

void FifoProducer::end_push() {
  if (!open_) throw std::logic_error("FifoProducer: no open push");
  handles_[next_]->release();
  open_ = false;
  next_ = (next_ + 1) % handles_.size();
  ++pushed_;
}

void FifoConsumer::link(TaskContext& ctx, TaskId owner,
                        std::size_t first_slot, std::size_t depth) {
  if (depth < 2) {
    throw std::invalid_argument("FifoConsumer: depth must be >= 2");
  }
  if (!handles_.empty()) {
    throw std::logic_error("FifoConsumer: already linked");
  }
  Arena* arena = ctx.location(owner, first_slot).queue().arena();
  handles_ = decltype(handles_)(ArenaAllocator<Handle2*>(arena));
  owned_ = decltype(owned_)(ArenaAllocator<ArenaPtr<Handle2>>(arena));
  for (std::size_t s = 0; s < depth; ++s) {
    Location& loc = ctx.location(owner, first_slot + s);
    ArenaPtr<Handle2> h(arena_new<Handle2>(*arena));
    h->read_insert(ctx, loc, /*priority=*/1);
    handles_.push_back(h.get());
    owned_.push_back(std::move(h));
  }
}

void FifoConsumer::adopt(std::vector<Handle2*> handles) {
  check_adoptable(handles, !handles_.empty(), "FifoConsumer");
  Arena* arena = handles[0]->location()->queue().arena();
  handles_ = decltype(handles_)(ArenaAllocator<Handle2*>(arena));
  handles_.assign(handles.begin(), handles.end());
}

std::span<const std::byte> FifoConsumer::begin_pop() {
  if (handles_.empty()) throw std::logic_error("FifoConsumer: not linked");
  if (open_) throw std::logic_error("FifoConsumer: pop already open");
  handles_[next_]->acquire();
  open_ = true;
  return handles_[next_]->read_map();
}

void FifoConsumer::end_pop() {
  if (!open_) throw std::logic_error("FifoConsumer: no open pop");
  handles_[next_]->release();
  open_ = false;
  next_ = (next_ + 1) % handles_.size();
  ++popped_;
}

}  // namespace orwl::rt
