#include "runtime/fifo.hpp"

#include <stdexcept>
#include <string>

namespace orwl::rt {

namespace {

void check_adoptable(const std::vector<Handle2*>& handles, bool linked,
                     const char* who) {
  if (linked) {
    throw std::logic_error(std::string(who) + ": already linked");
  }
  if (handles.size() < 2) {
    throw std::invalid_argument(std::string(who) +
                                ": adopt needs a ring of >= 2 handles");
  }
  for (const Handle2* h : handles) {
    if (h == nullptr || !h->linked()) {
      throw std::invalid_argument(
          std::string(who) + ": adopted handles must be inserted already");
    }
  }
}

}  // namespace

void FifoProducer::link(TaskContext& ctx, TaskId owner,
                        std::size_t first_slot, std::size_t depth,
                        std::size_t bytes) {
  if (depth < 2) {
    throw std::invalid_argument("FifoProducer: depth must be >= 2");
  }
  if (!handles_.empty()) {
    throw std::logic_error("FifoProducer: already linked");
  }
  for (std::size_t s = 0; s < depth; ++s) {
    Location& loc = ctx.location(owner, first_slot + s);
    if (ctx.id() == owner) loc.scale(bytes);
    auto h = std::make_unique<Handle2>();
    h->write_insert(ctx, loc, /*priority=*/0);
    handles_.push_back(h.get());
    owned_.push_back(std::move(h));
  }
}

void FifoProducer::adopt(std::vector<Handle2*> handles) {
  check_adoptable(handles, !handles_.empty(), "FifoProducer");
  handles_ = std::move(handles);
}

std::span<std::byte> FifoProducer::begin_push() {
  if (handles_.empty()) throw std::logic_error("FifoProducer: not linked");
  if (open_) throw std::logic_error("FifoProducer: push already open");
  handles_[next_]->acquire();
  open_ = true;
  return handles_[next_]->write_map();
}

void FifoProducer::end_push() {
  if (!open_) throw std::logic_error("FifoProducer: no open push");
  handles_[next_]->release();
  open_ = false;
  next_ = (next_ + 1) % handles_.size();
  ++pushed_;
}

void FifoConsumer::link(TaskContext& ctx, TaskId owner,
                        std::size_t first_slot, std::size_t depth) {
  if (depth < 2) {
    throw std::invalid_argument("FifoConsumer: depth must be >= 2");
  }
  if (!handles_.empty()) {
    throw std::logic_error("FifoConsumer: already linked");
  }
  for (std::size_t s = 0; s < depth; ++s) {
    Location& loc = ctx.location(owner, first_slot + s);
    auto h = std::make_unique<Handle2>();
    h->read_insert(ctx, loc, /*priority=*/1);
    handles_.push_back(h.get());
    owned_.push_back(std::move(h));
  }
}

void FifoConsumer::adopt(std::vector<Handle2*> handles) {
  check_adoptable(handles, !handles_.empty(), "FifoConsumer");
  handles_ = std::move(handles);
}

std::span<const std::byte> FifoConsumer::begin_pop() {
  if (handles_.empty()) throw std::logic_error("FifoConsumer: not linked");
  if (open_) throw std::logic_error("FifoConsumer: pop already open");
  handles_[next_]->acquire();
  open_ = true;
  return handles_[next_]->read_map();
}

void FifoConsumer::end_pop() {
  if (!open_) throw std::logic_error("FifoConsumer: no open pop");
  handles_[next_]->release();
  open_ = false;
  next_ = (next_ + 1) % handles_.size();
  ++popped_;
}

}  // namespace orwl::rt
