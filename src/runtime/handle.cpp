#include "runtime/handle.hpp"

#include <atomic>

#include "runtime/comm_meter.hpp"

namespace orwl::rt {

namespace {

/// Process-wide count of swallowed teardown releases (see
/// guard_teardown_failures in the header).
std::atomic<std::uint64_t>& teardown_failure_counter() noexcept {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

}  // namespace

std::uint64_t guard_teardown_failures() noexcept {
  return teardown_failure_counter().load(std::memory_order_relaxed);
}

void Handle::insert(TaskContext& ctx, Location& loc, AccessMode mode,
                    std::uint64_t priority) {
  if (linked()) {
    throw std::logic_error("Handle: already linked to a location");
  }
  loc_ = &loc;
  prog_ = &ctx.program();
  task_ = ctx.id();
  mode_ = mode;
  ctx.program().register_insert(ctx.id(), loc, mode, priority, this);
}

void Handle::insert_standalone(Location& loc, AccessMode mode) {
  if (linked()) {
    throw std::logic_error("Handle: already linked to a location");
  }
  loc_ = &loc;
  prog_ = nullptr;
  task_ = 0;
  mode_ = mode;
  ticket_ = loc.enqueue_request(mode);
}

void Handle::write_insert(TaskContext& ctx, Location& loc,
                          std::uint64_t priority) {
  insert(ctx, loc, AccessMode::Write, priority);
}

void Handle::read_insert(TaskContext& ctx, Location& loc,
                         std::uint64_t priority) {
  insert(ctx, loc, AccessMode::Read, priority);
}

void Handle::acquire() {
  if (!linked()) throw std::logic_error("Handle::acquire: not linked");
  if (ticket_ == 0) {
    throw std::logic_error(
        "Handle::acquire: no pending request (plain handles cannot be "
        "re-acquired after release; use Handle2 for iterations)");
  }
  if (acquired_) throw std::logic_error("Handle::acquire: already acquired");
  loc_->acquire_request(ticket_);
  acquired_ = true;
  // Measured communication matrix (ORWL_REPLACE): the grant we just got
  // is a hand-off from whoever released the location last — the pair
  // (releaser, us) moved this location's bytes between their caches and
  // NUMA nodes. Gated on the meter so the Off policy costs one branch.
  if (prog_ != nullptr && prog_->comm_meter() != nullptr) {
    const std::int64_t from = loc_->last_releaser();
    if (from >= 0 && static_cast<TaskId>(from) != task_) {
      prog_->record_handoff(static_cast<TaskId>(from), task_, *loc_);
    }
  }
}

void Handle::release() {
  if (!acquired_) throw std::logic_error("Handle::release: not acquired");
  // Adaptive data transfer watches where granted writers actually run:
  // record our task's placed node before the hand-off fires, so the
  // control thread's grant hook sees it when deciding whether to migrate
  // the buffer (two lock-free stores; skipped under cheaper policies).
  if (mode_ == AccessMode::Write && prog_ != nullptr &&
      prog_->data_transfer() == DataTransferPolicy::Adaptive) {
    loc_->note_writer_node(prog_->placed_node_of_task(task_));
  }
  // Leave our task id on the location before the hand-off fires, so the
  // next grantee can attribute the transfer (see Handle::acquire).
  if (prog_ != nullptr && prog_->comm_meter() != nullptr) {
    loc_->note_releaser(task_);
  }
  if (iterative_) {
    ticket_ = loc_->reinsert_release_request(ticket_, mode_);
  } else {
    loc_->release_request(ticket_);
    ticket_ = 0;
  }
  acquired_ = false;
}

void Handle::release_for_teardown() noexcept {
  if (!acquired_) return;  // double release through a guard is legal
  try {
    release();
  } catch (...) {
    // A destructor must not throw; record the failure so tests and
    // operators can still see that a teardown went wrong.
    teardown_failure_counter().fetch_add(1, std::memory_order_relaxed);
    if (prog_ != nullptr) prog_->note_teardown_failure();
    acquired_ = false;  // the grant state is unknown; do not retry
  }
}

std::span<std::byte> Handle::write_map() {
  if (!acquired_) throw std::logic_error("write_map: section not acquired");
  if (mode_ != AccessMode::Write) {
    throw std::logic_error("write_map: handle has read access only");
  }
  return {loc_->data(), loc_->size()};
}

std::span<const std::byte> Handle::read_map() {
  if (!acquired_) throw std::logic_error("read_map: section not acquired");
  return {loc_->data(), loc_->size()};
}

}  // namespace orwl::rt
