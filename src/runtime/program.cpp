#include "runtime/program.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/comm_meter.hpp"
#include "runtime/handle.hpp"
#include "support/env.hpp"
#include "treematch/strategies.hpp"
#include "topo/binding.hpp"
#include "topo/cpuset.hpp"
#include "topo/detect.hpp"
#include "topo/membind.hpp"
#include "topo/shard.hpp"

namespace orwl::rt {

namespace {

DataTransferPolicy resolve_data_transfer(DataTransferMode mode) {
  switch (mode) {
    case DataTransferMode::Off: return DataTransferPolicy::Off;
    case DataTransferMode::Owner: return DataTransferPolicy::Owner;
    case DataTransferMode::Adaptive: return DataTransferPolicy::Adaptive;
    case DataTransferMode::FromEnv: break;
  }
  const auto v = support::env_string(kDataTransferEnvVar);
  if (v.has_value() && !v->empty()) {
    if (support::iequals(*v, "off")) return DataTransferPolicy::Off;
    if (support::iequals(*v, "owner")) return DataTransferPolicy::Owner;
    if (support::iequals(*v, "adaptive")) return DataTransferPolicy::Adaptive;
    support::throw_bad_env(kDataTransferEnvVar, *v, "off, owner or adaptive");
  }
  return DataTransferPolicy::Owner;
}

std::size_t resolve_transfer_hysteresis(std::size_t from_options) {
  if (from_options != 0) return from_options;
  const long env = support::env_long(kDataTransferHysteresisEnvVar, -1);
  return env > 0 ? static_cast<std::size_t>(env) : 2;
}

ReplaceMode resolve_replace(ReplaceMode mode) {
  if (mode != ReplaceMode::FromEnv) return mode;
  const auto v = support::env_string(kReplaceEnvVar);
  if (v.has_value() && !v->empty()) {
    if (support::iequals(*v, "off")) return ReplaceMode::Off;
    if (support::iequals(*v, "auto")) return ReplaceMode::Auto;
    if (support::iequals(*v, "passive")) return ReplaceMode::Passive;
    support::throw_bad_env(kReplaceEnvVar, *v, "off, auto or passive");
  }
  return ReplaceMode::Off;
}

double resolve_replace_threshold(double from_options) {
  if (from_options > 0.0) return from_options;
  const double env = support::env_double(kReplaceThresholdEnvVar, 0.25);
  return env > 0.0 ? env : 0.25;
}

double resolve_replace_decay(double from_options) {
  const double v = from_options >= 0.0
                       ? from_options
                       : support::env_double(kReplaceDecayEnvVar, 0.5);
  return std::clamp(v, 0.0, 1.0);
}

std::size_t resolve_replace_interval(std::size_t from_options) {
  if (from_options != 0) return from_options;
  const long env = support::env_long(kReplaceIntervalEnvVar, -1);
  return env > 0 ? static_cast<std::size_t>(env) : 16;
}

}  // namespace

const char* to_string(ReplaceMode m) noexcept {
  switch (m) {
    case ReplaceMode::Off: return "off";
    case ReplaceMode::Passive: return "passive";
    case ReplaceMode::Auto: return "auto";
    case ReplaceMode::FromEnv: return "from-env";
  }
  return "?";
}

Program::Program(std::size_t num_tasks, ProgramOptions opts)
    : num_tasks_(num_tasks), opts_(opts) {
  if (num_tasks == 0) {
    throw std::invalid_argument("Program: at least one task required");
  }
  if (opts_.locations_per_task == 0) {
    throw std::invalid_argument("Program: locations_per_task must be >= 1");
  }

  if (opts_.topology != nullptr) {
    topology_ = opts_.topology;
  } else {
    owned_topology_ = topo::detect_host();
    topology_ = &owned_topology_;
  }

  switch (opts_.affinity) {
    case AffinityMode::Off: affinity_enabled_ = false; break;
    case AffinityMode::On: affinity_enabled_ = true; break;
    case AffinityMode::FromEnv: affinity_enabled_ = aff::enabled_from_env();
  }

  std::size_t nc = opts_.control_threads;
  if (nc == ProgramOptions::kAutoControlThreads) {
    nc = std::max<std::size_t>(1, num_tasks_ / 4);
  }
  // One event shard per NUMA node (topology subtree on NUMA-less
  // machines), overridable via ORWL_CONTROL_SHARDS, never more shards
  // than control threads to serve them.
  std::size_t nshards = opts_.control_shards;
  if (nshards == ProgramOptions::kAutoControlShards) {
    nshards = topo::recommended_shard_count(*topology_);
    const long env_shards = support::env_long(kControlShardsEnvVar, -1);
    if (env_shards > 0) nshards = static_cast<std::size_t>(env_shards);
  }
  ControlPlaneOptions cp_opts;
  cp_opts.num_threads = nc;
  cp_opts.num_shards = std::max<std::size_t>(1, nshards);
  // The shard count is needed *before* the plane exists: the per-shard
  // arenas feed the plane's own event deques.
  const std::size_t eff_shards = ControlPlane::effective_shards(cp_opts);
  shard_map_ = topo::make_shard_map(*topology_, eff_shards);

  // One node-bound arena per shard. A shard's node is the node of its
  // PUs (the shard map partitions PUs by NUMA node); -1 (any node) when
  // the topology has no NUMA level.
  shard_nodes_.assign(eff_shards, Arena::kAnyNode);
  for (std::size_t pu = 0; pu < shard_map_.shard_of_pu_os.size(); ++pu) {
    const int s = shard_map_.shard_of_pu_os[pu];
    if (s >= 0 && static_cast<std::size_t>(s) < eff_shards &&
        shard_nodes_[s] == Arena::kAnyNode) {
      shard_nodes_[s] =
          topo::numa_node_of_pu(*topology_, static_cast<int>(pu));
    }
  }
  arenas_.reserve(eff_shards);
  for (std::size_t s = 0; s < eff_shards; ++s) {
    arenas_.push_back(std::make_unique<Arena>(shard_nodes_[s]));
    cp_opts.shard_arenas.push_back(arenas_.back().get());
  }

  control_ = std::make_unique<ControlPlane>(cp_opts);
  stats_.control_shards = control_->num_shards();

  data_policy_ = resolve_data_transfer(opts_.data_transfer);
  const std::size_t hysteresis =
      resolve_transfer_hysteresis(opts_.data_transfer_hysteresis);
  replace_policy_ = resolve_replace(opts_.replace);
  replace_threshold_ = resolve_replace_threshold(opts_.replace_threshold);
  replace_decay_ = resolve_replace_decay(opts_.replace_decay);
  replace_interval_ = resolve_replace_interval(opts_.replace_interval);
  steal_mode_ = resolve_steal_mode(opts_.steal);
  steal_spin_ = resolve_steal_spin(opts_.steal_spin);
  if (replace_policy_ != ReplaceMode::Off) {
    meter_ = std::make_unique<CommMeter>(control_->num_shards(), num_tasks_,
                                         cp_opts.shard_arenas);
  }
  task_node_ = std::make_unique<std::atomic<int>[]>(num_tasks_);
  for (TaskId t = 0; t < num_tasks_; ++t) {
    task_node_[t].store(-1, std::memory_order_relaxed);
  }

  locations_.reserve(num_tasks_ * opts_.locations_per_task);
  for (TaskId t = 0; t < num_tasks_; ++t) {
    for (std::size_t s = 0; s < opts_.locations_per_task; ++s) {
      const LocationId id = t * opts_.locations_per_task + s;
      // The queue draws windows and slots from its (default) shard's
      // arena; re-pointed with the routing once a placement exists.
      locations_.push_back(std::make_unique<Location>(
          id, t, s, arenas_[t % control_->num_shards()].get()));
      locations_.back()->queue().set_control_plane(control_.get());
      locations_.back()->queue().set_acquire_timeout(
          opts_.acquire_timeout_ms);
      // Identity for lock-protocol diagnostics: the acquire-timeout
      // guard names the exact location (and tenant) that is stuck.
      locations_.back()->queue().set_tag(
          "location " + std::to_string(id) + " (owner task " +
          std::to_string(t) + ", slot " + std::to_string(s) +
          (opts_.tag.empty() ? std::string()
                             : ", tenant '" + opts_.tag + "'") +
          ")");
      // Placement-free default routing: owner round-robin. Replaced by
      // the topology-aware routing once a placement exists.
      locations_.back()->queue().set_control_shard(
          t % control_->num_shards());
      locations_.back()->set_data_transfer(data_policy_);
      locations_.back()->set_transfer_hysteresis(
          static_cast<std::uint32_t>(hysteresis));
      if (data_policy_ != DataTransferPolicy::Off) {
        // Grant-time data transfer: the control thread serving this
        // location's shard migrates the buffer before waking a grantee.
        locations_.back()->queue().set_grant_hook(
            locations_.back()->grant_hook());
      }
    }
  }

  bodies_.resize(num_tasks_);
  insert_seq_.assign(num_tasks_, 0);
  task_handles_.resize(num_tasks_);

  graph_.num_tasks = num_tasks_;
  graph_.locations_per_task = opts_.locations_per_task;
  graph_.locations.resize(locations_.size());
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    graph_.locations[i].id = locations_[i]->id();
    graph_.locations[i].owner = locations_[i]->owner();
  }
}

Program::~Program() {
  if (control_) control_->stop();
}

void Program::set_task_body(TaskFn fn) {
  for (auto& b : bodies_) b = fn;
}

void Program::set_task_body(TaskId id, TaskFn fn) {
  if (id >= num_tasks_) throw std::out_of_range("set_task_body: bad task id");
  bodies_[id] = std::move(fn);
}

Location& Program::location(TaskId task, std::size_t slot) {
  if (task >= num_tasks_ || slot >= opts_.locations_per_task) {
    throw std::out_of_range("Program::location: bad coordinates");
  }
  return *locations_[task * opts_.locations_per_task + slot];
}

const TaskGraph& Program::graph() const {
  std::unique_lock lock(graph_mu_);
  return graph_;
}

void Program::declare_insert(TaskId task, Location& loc, AccessMode mode,
                             std::uint64_t priority, Handle& handle) {
  if (task >= num_tasks_) {
    throw std::out_of_range("declare_insert: bad task id");
  }
  if (handle.linked()) {
    throw std::logic_error("declare_insert: handle already linked");
  }
  std::unique_lock lock(graph_mu_);
  if (scheduled_) {
    throw std::logic_error(
        "declare_insert: program already scheduled (late links must be "
        "inserted from the owning task's body)");
  }
  // The fields Handle::insert would set from a TaskContext; declarative
  // links have no context yet — the builder registers them up front.
  handle.loc_ = &loc;
  handle.prog_ = this;
  handle.task_ = task;
  handle.mode_ = mode;
  pending_.push_back(PendingInsert{loc.id(), mode, priority, task,
                                   insert_seq_[task]++, &handle});
  graph_version_.fetch_add(1, std::memory_order_release);
}

void Program::register_insert(TaskId task, Location& loc, AccessMode mode,
                              std::uint64_t priority, Handle* handle) {
  std::unique_lock lock(graph_mu_);
  graph_version_.fetch_add(1, std::memory_order_release);
  if (!scheduled_) {
    pending_.push_back(
        PendingInsert{loc.id(), mode, priority, task, insert_seq_[task]++,
                      handle});
    return;
  }
  // Live insert after schedule (dynamic mode): enqueue immediately and
  // extend the graph so that a later dependency_get() sees the new edge.
  graph_.locations[loc.id()].accesses.push_back(
      Access{task, mode, priority});
  graph_.locations[loc.id()].bytes = loc.size();
  lock.unlock();
  // Route the queue to its owner's control shard now, under the placement
  // that exists at insert time, instead of leaving it on the constructor's
  // owner-round-robin shard until the next affinity_compute().
  route_queue(loc);
  handle->attach_ticket(loc.enqueue_request(mode));
}

void Program::schedule_barrier(TaskId tid) {
  std::unique_lock lock(barrier_mu_);
  const std::size_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == num_tasks_) {
    try {
      freeze_and_place();
    } catch (...) {
      barrier_error_ = std::current_exception();
    }
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts_.acquire_timeout_ms == 0
                                      ? 3600000
                                      : opts_.acquire_timeout_ms);
    if (!barrier_cv_.wait_until(lock, deadline, [&] {
          return barrier_generation_ != my_generation;
        })) {
      throw std::runtime_error(
          "orwl_schedule: barrier timed out (a task did not arrive)");
    }
  }
  if (barrier_error_) std::rethrow_exception(barrier_error_);
  lock.unlock();
  bind_self(tid);
}

void Program::freeze_and_place() {
  {
    std::unique_lock lock(graph_mu_);
    // Record sizes now: scale() happened during the init phase.
    for (std::size_t i = 0; i < locations_.size(); ++i) {
      graph_.locations[i].bytes = locations_[i]->size();
    }
    // Deterministic initial FIFO order per location:
    // (priority, task, per-task insertion sequence).
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const PendingInsert& a, const PendingInsert& b) {
                       if (a.loc != b.loc) return a.loc < b.loc;
                       if (a.priority != b.priority) {
                         return a.priority < b.priority;
                       }
                       if (a.task != b.task) return a.task < b.task;
                       return a.seq < b.seq;
                     });
    for (const PendingInsert& p : pending_) {
      graph_.locations[p.loc].accesses.push_back(
          Access{p.task, p.mode, p.priority});
      p.handle->attach_ticket(locations_[p.loc]->enqueue_request(p.mode));
    }
    pending_.clear();
    scheduled_ = true;
  }

  if (affinity_enabled_) {
    // The paper's automatic mode: exactly the advanced API in sequence.
    dependency_get();
    affinity_compute();
    affinity_set();
    stats_.affinity_applied = true;
  }
}

void Program::dependency_get() {
  tm::CommMatrix m;
  std::uint64_t version = 0;
  {
    std::unique_lock lock(graph_mu_);
    version = graph_version_.load(std::memory_order_relaxed);
    if (!scheduled_ && !pending_.empty()) {
      // Pre-run extraction for declaratively wired programs: the graph
      // itself stays frozen-at-schedule, but the matrix can already be
      // computed from the declared accesses and the current location
      // sizes — this is what removes the dry-run double execution.
      TaskGraph declared = graph_;
      for (std::size_t i = 0; i < locations_.size(); ++i) {
        declared.locations[i].bytes = locations_[i]->size();
      }
      for (const PendingInsert& p : pending_) {
        declared.locations[p.loc].accesses.push_back(
            Access{p.task, p.mode, p.priority});
      }
      m = aff::comm_matrix_from_graph(declared);
    } else {
      m = aff::comm_matrix_from_graph(graph_);
    }
  }
  std::unique_lock lock(place_mu_);
  matrix_ = std::move(m);
  have_matrix_ = true;
  matrix_version_ = version;
}

std::vector<int> Program::control_associates() const {
  // Control thread j drains hand-off events of all locations; associate
  // it round-robin with the tasks so the placement spreads control
  // threads across the compute threads' cores.
  std::vector<int> assoc(control_->num_threads());
  for (std::size_t j = 0; j < assoc.size(); ++j) {
    assoc[j] = static_cast<int>(j % num_tasks_);
  }
  return assoc;
}

std::vector<int> Program::shard_aligned_associates(
    const tm::Placement& p) const {
  const std::size_t nshards = control_->num_shards();
  std::vector<std::vector<int>> tasks_of_shard(nshards);
  for (TaskId t = 0; t < num_tasks_; ++t) {
    int shard = t < p.compute_pu.size()
                    ? shard_map_.shard_of(p.compute_pu[t])
                    : -1;
    if (shard < 0) shard = static_cast<int>(t % nshards);
    tasks_of_shard[static_cast<std::size_t>(shard)].push_back(
        static_cast<int>(t));
  }
  std::vector<int> assoc(control_->num_threads());
  for (std::size_t j = 0; j < assoc.size(); ++j) {
    const auto& tasks = tasks_of_shard[control_->shard_of_thread(j)];
    assoc[j] = tasks.empty()
                   ? static_cast<int>(j % num_tasks_)
                   : tasks[(j / nshards) % tasks.size()];
  }
  return assoc;
}

std::size_t Program::shard_for_owner_locked(TaskId owner) const {
  int shard = have_placement_ && owner < placement_.compute_pu.size()
                  ? shard_map_.shard_of(placement_.compute_pu[owner])
                  : -1;
  if (shard < 0) {
    shard = static_cast<int>(owner % control_->num_shards());
  }
  return static_cast<std::size_t>(shard);
}

void Program::route_queues_locked() {
  if (control_->num_shards() <= 1) return;
  for (auto& loc : locations_) {
    const std::size_t shard = shard_for_owner_locked(loc->owner());
    loc->queue().set_control_shard(shard);
    // Future windows/slots of this queue come from the new shard's
    // arena; already-allocated blocks stay with (and free back to) the
    // arena that made them.
    loc->queue().set_arena(arenas_[shard].get());
  }
}

void Program::route_queue(Location& loc) {
  std::lock_guard lock(place_mu_);
  if (control_->num_shards() > 1) {
    const std::size_t shard = shard_for_owner_locked(loc.owner());
    loc.queue().set_control_shard(shard);
    loc.queue().set_arena(arenas_[shard].get());
  }
  // Memory follows the same rule as the events: the buffer lives on the
  // owner's placed node (no-op while unplaced or with transfers off).
  loc.bind_home(placed_node_of_task(loc.owner()));
}

void Program::update_task_nodes_locked() {
  for (TaskId t = 0; t < num_tasks_; ++t) {
    int node = -1;
    if (t < placement_.compute_pu.size()) {
      node = topo::numa_node_of_pu(*topology_, placement_.compute_pu[t]);
    }
    task_node_[t].store(node, std::memory_order_release);
  }
}

void Program::bind_location_memory_locked() {
  if (data_policy_ == DataTransferPolicy::Off) return;
  std::size_t bound = 0;
  std::size_t skipped = 0;
  for (auto& loc : locations_) {
    const int node = task_node_[loc->owner()].load(std::memory_order_relaxed);
    if (node < 0) continue;
    if (loc->data() == nullptr) {
      // Hint-only (scale_hint) or never-scaled buffer: bind_home/migrate
      // would silently no-op — skip and count instead of reporting a
      // successful binding that never happened.
      ++skipped;
      continue;
    }
    loc->bind_home(node);
    ++bound;
  }
  stats_.locations_bound = bound;
  stats_.locations_skipped_unsized = skipped;
}

void Program::compute_placement_locked(const tm::CommMatrix& m) {
  aff::ComputeOptions copts;
  copts.num_control_threads = control_->num_threads();
  copts.control_associate = control_associates();
  copts.engine = opts_.engine;
  try {
    placement_ = aff::compute_placement(m, *topology_, copts);
    // Shard alignment: control thread j serves shard j % num_shards. Once
    // the first pass tells us which shard each task's PU belongs to,
    // re-associate every control thread with a task of its own shard and
    // recompute, so shard k's threads end up on the hyperthread siblings
    // / spare cores of the compute threads whose queues shard k serves.
    const std::vector<int> aligned = shard_aligned_associates(placement_);
    if (aligned != copts.control_associate) {
      copts.control_associate = aligned;
      placement_ = aff::compute_placement(m, *topology_, copts);
    }
  } catch (const std::invalid_argument&) {
    // Algorithm 1 requires a symmetric tree; real hosts occasionally are
    // not (disabled cores, heterogeneous packages). Degrade gracefully to
    // a topology-ordered placement rather than aborting the program.
    placement_ = tm::place_strategy(tm::Strategy::CompactCores, *topology_,
                                    num_tasks_);
    placement_.control_pu.assign(control_->num_threads(), -1);
    stats_.affinity_fallback = true;
  }
  placement_recomputes_.fetch_add(1, std::memory_order_relaxed);
  have_placement_ = true;
  placement_matrix_ = m;
  // Runtime-internal memory follows the placement too: every shard
  // arena re-asserts its node binding (Arena::rebind migrates existing
  // slabs on a node change and no-ops otherwise). The shard->node map
  // is derived from the topology, so today this only moves pages when a
  // re-placement crosses shard maps; the hook keeps arena placement and
  // queue routing in one transaction either way.
  for (std::size_t s = 0; s < arenas_.size(); ++s) {
    arenas_[s]->rebind(shard_nodes_[s]);
  }
  route_queues_locked();
  // The memory half of the placement: every location buffer moves to its
  // owner's NUMA node (re-run here on every dynamic re-placement too).
  update_task_nodes_locked();
  bind_location_memory_locked();
}

void Program::affinity_compute() {
  std::unique_lock lock(place_mu_);
  if (!have_matrix_) {
    lock.unlock();
    dependency_get();
    lock.lock();
  }
  // Version stamp: when the current placement was computed from a matrix
  // of the current task-location graph, the Algorithm 1 recompute would
  // reproduce it — skip it entirely (the schedule barrier of a program
  // that already placed itself pre-run hits this path).
  const std::uint64_t version = graph_version_.load(std::memory_order_acquire);
  if (have_placement_ && placement_version_ == version &&
      matrix_version_ == version) {
    return;
  }
  compute_placement_locked(matrix_);
  placement_version_ = matrix_version_;
}

void Program::affinity_set() {
  std::unique_lock lock(place_mu_);
  if (!have_placement_) {
    lock.unlock();
    affinity_compute();
    lock.lock();
  }
  bind_threads_locked();
}

void Program::bind_threads_locked() {
  if (!opts_.bind_threads) return;
  // Bind all registered task threads.
  for (TaskId t = 0; t < num_tasks_; ++t) {
    const int pu = t < placement_.compute_pu.size()
                       ? placement_.compute_pu[t]
                       : -1;
    if (pu < 0 || task_handles_[t] == std::thread::native_handle_type{}) {
      continue;
    }
    if (topo::bind_thread(task_handles_[t], topo::CpuSet::single(pu))) {
      ++stats_.compute_threads_bound;
    } else {
      ++stats_.bind_failures;
    }
  }
  stats_.control_threads_bound +=
      control_->bind_threads(placement_.control_pu);
}

void Program::bind_self(TaskId tid) {
  if (!opts_.bind_threads) return;
  std::unique_lock lock(place_mu_);
  if (!have_placement_) return;
  const int pu =
      tid < placement_.compute_pu.size() ? placement_.compute_pu[tid] : -1;
  lock.unlock();
  if (pu < 0) return;
  // Re-assert the binding from the thread itself (affinity_set already
  // bound us by handle; this also covers threads registered late).
  topo::bind_current_thread(topo::CpuSet::single(pu));
}

void Program::record_handoff(TaskId from, TaskId to,
                             const Location& loc) noexcept {
  CommMeter* meter = meter_.get();
  if (meter == nullptr) return;
  const int from_node = placed_node_of_task(from);
  const int to_node = placed_node_of_task(to);
  const bool remote = from_node >= 0 && to_node >= 0 && from_node != to_node;
  meter->record(loc.queue().control_shard(), from, to,
                static_cast<std::uint64_t>(loc.size()), remote);
}

void Program::replace_tick() noexcept {
  if (meter_ == nullptr) return;
  const std::uint64_t n =
      replace_ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t period =
      static_cast<std::uint64_t>(replace_interval_) * num_tasks_;
  if (period == 0 || n % period != 0) return;
  // Single flight: whichever task crosses the boundary first runs the
  // check; concurrent crossers skip instead of queueing up behind the
  // placement mutex.
  if (replace_busy_.exchange(true, std::memory_order_acquire)) return;
  try {
    check_replacement();
  } catch (...) {
    // A failed check must never take the program down; the next interval
    // simply tries again.
  }
  replace_busy_.store(false, std::memory_order_release);
}

void Program::check_replacement() {
  std::unique_lock lock(place_mu_);
  replace_checks_.fetch_add(1, std::memory_order_relaxed);
  meter_->harvest(measured_, replace_decay_);
  if (measured_.total_volume() <= 0.0) return;
  // Compare against the matrix the *current* placement was computed from
  // (declared at first, measured after a re-placement): once the program
  // has been re-placed onto the measured pattern, an unchanged pattern
  // must not keep re-triggering.
  const tm::CommMatrix& baseline =
      placement_matrix_.order() != 0
          ? placement_matrix_
          : (have_matrix_ ? matrix_ : measured_);
  const double divergence = tm::normalized_distance(measured_, baseline);
  if (divergence <= replace_threshold_) return;
  replace_triggers_.fetch_add(1, std::memory_order_relaxed);
  if (replace_policy_ != ReplaceMode::Auto || !have_placement_) {
    return;  // passive: record the trigger, never move anything
  }
  compute_placement_locked(measured_);
  // Stamp the measured placement as current for this graph so a later
  // affinity_compute() on the unchanged graph does not clobber it with
  // the stale declared matrix.
  placement_version_ = graph_version_.load(std::memory_order_acquire);
  matrix_version_ = placement_version_;
  bind_threads_locked();
  replacements_.fetch_add(1, std::memory_order_relaxed);
}

tm::CommMatrix Program::measured_matrix() const {
  std::unique_lock lock(place_mu_);
  return measured_;
}

const tm::CommMatrix& Program::comm_matrix() const {
  std::unique_lock lock(place_mu_);
  if (!have_matrix_) {
    throw std::logic_error("comm_matrix: call dependency_get() first");
  }
  return matrix_;
}

const tm::Placement& Program::placement() const {
  std::unique_lock lock(place_mu_);
  if (!have_placement_) {
    throw std::logic_error("placement: call affinity_compute() first");
  }
  return placement_;
}

void Program::run() {
  for (TaskId t = 0; t < num_tasks_; ++t) {
    if (!bodies_[t]) {
      throw std::logic_error("Program::run: task " + std::to_string(t) +
                             " has no body");
    }
  }
  control_->start();

  std::mutex err_mu;
  std::exception_ptr first_error;

  threads_.clear();
  threads_.reserve(num_tasks_);
  for (TaskId t = 0; t < num_tasks_; ++t) {
    threads_.emplace_back([this, t, &err_mu, &first_error] {
      task_handles_[t] = pthread_self();
      TaskContext ctx(*this, t);
      try {
        bodies_[t](ctx);
      } catch (...) {
        std::unique_lock lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : threads_) th.join();
  threads_.clear();

  // Snapshot counters after stop(): trailing hand-offs drained during
  // shutdown must land in exactly one of the two counts.
  control_->stop();
  stats_.control_events = control_->events_processed();
  stats_.control_inline_grants = control_->inline_grants();
  std::uint64_t transfers = 0;
  for (const auto& loc : locations_) transfers += loc->data_transfers();
  stats_.data_transfers = transfers;
  stats_.guard_teardown_failures =
      teardown_failures_.load(std::memory_order_relaxed);
  stats_.placement_recomputes =
      placement_recomputes_.load(std::memory_order_relaxed);
  stats_.replace_checks = replace_checks_.load(std::memory_order_relaxed);
  stats_.replace_triggers =
      replace_triggers_.load(std::memory_order_relaxed);
  stats_.replacements = replacements_.load(std::memory_order_relaxed);
  if (meter_) {
    stats_.measured_handoffs = meter_->handoffs();
    stats_.measured_remote_handoffs = meter_->remote_handoffs();
  }
  std::uint64_t arena_bytes = 0, arena_refills = 0, arena_misses = 0;
  std::uint64_t arena_magazine_hits = 0;
  for (const auto& a : arenas_) {
    const Arena::Stats as = a->stats();
    arena_bytes += as.bytes_reserved;
    arena_refills += as.refills;
    arena_misses += as.node_misses;
    arena_magazine_hits += as.magazine_hits;
  }
  stats_.arena_bytes = arena_bytes;
  stats_.arena_refills = arena_refills;
  stats_.arena_node_misses = arena_misses;
  stats_.arena_magazine_hits = arena_magazine_hits;
  stats_.shard_steals = control_->shard_steals();
  if (steal_stats_source_) steal_stats_source_(stats_);
  std::uint64_t futex_waits = control_->futex_waits();
  std::uint64_t futex_wakes = control_->futex_wakes();
  for (const auto& loc : locations_) {
    futex_waits += loc->queue().futex_waits();
    futex_wakes += loc->queue().futex_wakes();
  }
  stats_.futex_waits = futex_waits;
  stats_.futex_wakes = futex_wakes;

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace orwl::rt
