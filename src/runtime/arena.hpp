// rt::Arena — per-shard slab allocator with node-bound backing pages.
//
// The grant engine's hottest structures (slot windows, slot slabs, shard
// event deques, FIFO rings, meter banks) used to come from the global
// heap wherever they were first touched — exactly the placement blindness
// the paper argues against. An Arena carves small objects out of
// topo::MemBind slabs bound to one NUMA node (the node of the control
// shard it serves), with power-of-two size-class freelists in front so
// the steady state never re-enters mmap.
//
// Ownership and routing: every allocation is prefixed by a small header
// naming the arena that produced it, so the static Arena::deallocate(p)
// routes a free back to the owning arena even after the object's queue
// has been re-routed to a different shard (ORWL_REPLACE moves queues
// between shards; memory stays where it was allocated until rebind()
// migrates the backing pages).
//
// Escape hatch: ORWL_ARENA=off (read at construction) makes every arena
// a thin veneer over ::operator new, keeping the old heap path diffable.
// ORWL_ARENA=shard (default) is the node-bound slab path.
//
// Thread safety: all public member functions are safe to call
// concurrently; the arena serializes on one internal mutex. The lock is
// cold by design — callers (RequestQueue, ControlPlane) allocate under
// their own locks on slow paths only.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "topo/membind.hpp"

namespace orwl::rt {

/// ORWL_ARENA=off|shard — off routes every arena to the plain heap
/// (placement-blind legacy path), shard (default) uses node-bound slabs.
inline constexpr const char* kArenaEnvVar = "ORWL_ARENA";

struct ThreadMagazines;  // per-thread block caches (arena.cpp)

class Arena {
 public:
  struct Header;  ///< per-allocation prefix (layout private to arena.cpp)

  /// Allocate backing slabs on any node (first touch).
  static constexpr int kAnyNode = -1;

  /// Default slab size. Large enough that a queue's whole slot window
  /// plus a few slot chunks fit in one mmap; small enough that a
  /// 20-shard program on a laptop does not pin half a gigabyte.
  static constexpr std::size_t kDefaultSlabBytes = 256 * 1024;

  /// Counter snapshot (also surfaced as ProgramStats::arena_*).
  struct Stats {
    std::uint64_t bytes_reserved = 0;  ///< backing bytes mmap'd / new'd
    std::uint64_t refills = 0;         ///< slab + large backing allocations
    std::uint64_t node_misses = 0;     ///< bind asked for a host node, pages
                                       ///< landed elsewhere (or tag-only)
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t rebinds = 0;         ///< rebind() calls that moved node
    std::uint64_t magazine_hits = 0;   ///< allocs served mutex-free from a
                                       ///< thread-local magazine
  };

  /// `node` is the NUMA node backing slabs are bound to (kAnyNode =
  /// first touch). The ORWL_ARENA mode is captured here, per arena, so
  /// tests can flip the env var with support::ScopedEnv and construct
  /// arenas in either mode side by side.
  explicit Arena(int node = kAnyNode,
                 std::size_t slab_bytes = kDefaultSlabBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// True when ORWL_ARENA is unset or `shard` right now (the default).
  static bool enabled_from_env();

  /// Process-wide fallback arena (any-node, heap-or-slab per env at
  /// first use). Intentionally leaked: runtime objects may free into it
  /// from static destructors after main().
  static Arena& runtime_default();

  /// Allocate `bytes` with at least `align` alignment. Never returns
  /// nullptr (throws std::bad_alloc on exhaustion like operator new).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Free a pointer from *any* arena (routed via the block header).
  /// nullptr is a no-op.
  static void deallocate(void* p) noexcept;

  /// Move the arena to a new NUMA node: future slabs are bound there and
  /// existing backing pages are migrated (topo::MemBind::migrate_to).
  /// No-op when the node is unchanged or the arena is in heap mode.
  void rebind(int node);

  int node() const noexcept { return node_.load(std::memory_order_acquire); }
  bool heap_mode() const noexcept { return heap_; }
  std::size_t slab_bytes() const noexcept { return slab_bytes_; }

  Stats stats() const noexcept;
  std::uint64_t live_allocs() const noexcept;

 private:
  void* allocate_locked(std::size_t need, std::size_t bytes,
                        std::size_t align);
  void release(Header* h) noexcept;
  /// Return magazine-cached blocks of size class `cls` to the shared
  /// freelist (flush path: rebind epoch bump, slot eviction, thread exit).
  void take_back_blocks(std::uint32_t cls, void* const* blocks,
                        std::size_t n) noexcept;
  /// Park a freed small block in the calling thread's magazine.
  /// False when the magazine class is full (caller takes the mutex path).
  bool magazine_put(Header* h) noexcept;
  void note_backing(const topo::MemBind& mb, std::size_t bytes, int node);

  static std::size_t class_index(std::size_t need) noexcept;

  const std::size_t slab_bytes_;
  const bool heap_;  ///< ORWL_ARENA=off at construction
  std::atomic<int> node_;

  mutable std::mutex mu_;
  std::vector<topo::MemBind> slabs_;              ///< small-object backing
  std::size_t bump_ = 0;                          ///< offset into slabs_.back()
  std::vector<void*> free_;                       ///< per-class freelist heads
  std::vector<std::pair<void*, topo::MemBind>> large_;  ///< oversize blocks

  std::atomic<std::uint64_t> bytes_reserved_{0};
  std::atomic<std::uint64_t> refills_{0};
  std::atomic<std::uint64_t> node_misses_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> rebinds_{0};
  std::atomic<std::uint64_t> magazine_hits_{0};

  /// Identity of this arena object (never reused, unlike the address)
  /// and the epoch its thread-local magazines were filled under. A
  /// magazine entry is honoured only when both match: a stale id means
  /// the arena died (the cached blocks went with its slabs — drop
  /// them), a stale epoch means rebind() moved the arena (flush the
  /// cache back to the shared freelists so placement follows).
  const std::uint64_t id_;
  std::atomic<std::uint64_t> mag_epoch_{0};

  friend struct ThreadMagazines;
};

/// Placement-new a T from `arena`; pair with arena_delete / ArenaPtr.
template <typename T, typename... Args>
T* arena_new(Arena& arena, Args&&... args) {
  void* mem = arena.allocate(sizeof(T), alignof(T));
  try {
    return new (mem) T(std::forward<Args>(args)...);
  } catch (...) {
    Arena::deallocate(mem);
    throw;
  }
}

template <typename T>
void arena_delete(T* p) noexcept {
  if (!p) return;
  p->~T();
  Arena::deallocate(p);
}

struct ArenaDelete {
  template <typename T>
  void operator()(T* p) const noexcept {
    arena_delete(p);
  }
};

/// unique_ptr whose deleter routes through the owning arena's header.
template <typename T>
using ArenaPtr = std::unique_ptr<T, ArenaDelete>;

/// Standard-allocator adapter so std containers (the control plane's
/// shard deques, the FIFO handle rings) draw from an arena. Copies and
/// swaps propagate the arena with the container, and equality is arena
/// identity — containers from different arenas exchange elements by
/// reallocating, never by freeing into the wrong pool (the header would
/// route correctly anyway, but the allocator contract is cleaner).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept : arena_(&Arena::runtime_default()) {}
  explicit ArenaAllocator(Arena* arena) noexcept
      : arena_(arena ? arena : &Arena::runtime_default()) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { Arena::deallocate(p); }

  Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }

 private:
  template <typename U>
  friend class ArenaAllocator;

  Arena* arena_;
};

}  // namespace orwl::rt
