// The ORWL program: tasks, locations, the schedule barrier and the
// integration point of the affinity module.
//
// Lifecycle (mirrors Listing 1 of the paper):
//   1. Construct a Program with N tasks (orwl_init).
//   2. Each task body scales its locations (orwl_scale) and links handles
//      (orwl_read_insert / orwl_write_insert).
//   3. Each task calls TaskContext::schedule() (orwl_schedule): a barrier
//      at which the runtime sorts and enqueues all initial requests,
//      freezes the task-location graph — and, when ORWL_AFFINITY=1, runs
//      the affinity module and binds every compute and control thread.
//   4. Tasks enter their compute phase using Sections on the handles.
//
// The advanced API of Sec. IV-B is exposed as the three parameter-less
// methods dependency_get() / affinity_compute() / affinity_set(), which
// "only change the internal state of the ORWL runtime".
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "affinity/affinity.hpp"
#include "runtime/control_plane.hpp"
#include "runtime/graph.hpp"
#include "runtime/location.hpp"
#include "runtime/steal_executor.hpp"
#include "topo/shard.hpp"
#include "topo/topology.hpp"
#include "treematch/treematch.hpp"

namespace orwl::rt {

class TaskContext;
class Handle;
class CommMeter;

using TaskFn = std::function<void(TaskContext&)>;

enum class AffinityMode {
  Off,      ///< never place
  On,       ///< always place
  FromEnv,  ///< follow ORWL_AFFINITY (the paper's automatic mode)
};

/// How ProgramOptions selects the grant-time data-transfer policy
/// (the runtime-internal policy itself is rt::DataTransferPolicy).
enum class DataTransferMode {
  Off,       ///< never bind or migrate location buffers
  Owner,     ///< bind buffers to the owner task's placed NUMA node
  Adaptive,  ///< Owner + grant-time migration toward recent writers
  FromEnv,   ///< follow ORWL_DATA_TRANSFER (default: owner)
};

/// Online re-placement policy (ORWL_REPLACE / ProgramOptions::replace):
/// whether the runtime measures the communication matrix the grant engine
/// actually observes and re-runs Algorithm 1 when it diverges from the
/// declared one.
enum class ReplaceMode {
  Off,      ///< no measurement, no re-placement (zero overhead)
  Passive,  ///< measure and count divergence triggers, never move anything
  Auto,     ///< measure and re-place when divergence crosses the threshold
  FromEnv,  ///< follow ORWL_REPLACE (default: off)
};

const char* to_string(ReplaceMode m) noexcept;

/// Environment override for the re-placement policy; accepted values are
/// "off", "passive" and "auto" (default: off).
inline constexpr const char* kReplaceEnvVar = "ORWL_REPLACE";

/// Divergence threshold (0..1, tm::normalized_distance between the
/// measured and the placement-defining matrix) above which a re-placement
/// check triggers. Default 0.25.
inline constexpr const char* kReplaceThresholdEnvVar =
    "ORWL_REPLACE_THRESHOLD";

/// Exponential decay of the measured matrix per harvest:
/// m = decay * m + delta. Default 0.5; 0 forgets everything between
/// checks, values near 1 average over many intervals.
inline constexpr const char* kReplaceDecayEnvVar = "ORWL_REPLACE_DECAY";

/// Iterations (per task) between divergence checks at run_iterations
/// boundaries. Default 16.
inline constexpr const char* kReplaceIntervalEnvVar =
    "ORWL_REPLACE_INTERVAL";

struct ProgramOptions {
  std::size_t locations_per_task = 1;

  /// Number of dedicated control threads; kAutoControlThreads picks
  /// max(1, num_tasks / 4).
  static constexpr std::size_t kAutoControlThreads = ~std::size_t{0};
  std::size_t control_threads = kAutoControlThreads;

  /// Control-plane event shards; kAutoControlShards picks one shard per
  /// NUMA node of the topology (see topo::recommended_shard_count),
  /// overridable with ORWL_CONTROL_SHARDS. Always clamped to
  /// [1, control_threads].
  static constexpr std::size_t kAutoControlShards = ~std::size_t{0};
  std::size_t control_shards = kAutoControlShards;

  AffinityMode affinity = AffinityMode::FromEnv;

  /// Location-memory management: which NUMA node location buffers live on
  /// and whether control threads migrate them at grant time (the "data
  /// transfer" half of Sec. IV-A). Overridable with ORWL_DATA_TRANSFER.
  DataTransferMode data_transfer = DataTransferMode::FromEnv;

  /// Topology to place on. Null => detect the host machine. The pointed-to
  /// topology must outlive the Program.
  const topo::Topology* topology = nullptr;

  tm::GroupingEngine engine = tm::GroupingEngine::Auto;

  /// When false the placement is computed but no OS binding is issued
  /// (used when placing for a synthetic machine larger than the host).
  bool bind_threads = true;

  /// Deadlock guard for lock acquisition; 0 disables.
  std::uint64_t acquire_timeout_ms = 120000;

  /// When true, tasks should return right after schedule(); used to
  /// extract the communication graph without running the compute phase.
  bool dry_run = false;

  /// Grant streak length after which the adaptive data-transfer policy
  /// migrates a buffer toward a remote writer node (K consecutive
  /// granted writers on the same non-buffer node). 0 = follow
  /// ORWL_DATA_TRANSFER_HYSTERESIS (default 2).
  std::size_t data_transfer_hysteresis = 0;

  /// Online re-placement policy (measured-matrix feedback loop).
  ReplaceMode replace = ReplaceMode::FromEnv;

  /// Divergence threshold for the re-placement trigger; 0 = follow
  /// ORWL_REPLACE_THRESHOLD (default 0.25).
  double replace_threshold = 0.0;

  /// Measured-matrix decay per harvest; negative = follow
  /// ORWL_REPLACE_DECAY (default 0.5). 0 is a valid explicit value
  /// (forget everything between checks).
  double replace_decay = -1.0;

  /// Per-task iterations between divergence checks; 0 = follow
  /// ORWL_REPLACE_INTERVAL (default 16).
  std::size_t replace_interval = 0;

  /// Work-stealing policy of the dynamic-work executor behind
  /// orwl::Task::for_each (ORWL_STEAL: off|node|all, default all).
  StealMode steal = StealMode::FromEnv;

  /// Fruitless victim sweeps before an executor worker parks; 0 =
  /// follow ORWL_STEAL_SPIN (default 64).
  std::size_t steal_spin = 0;

  /// Tenant tag carried into lock-protocol diagnostics: every location
  /// queue's acquire-timeout error names its location, owner task, slot
  /// and — when set — this tag, so a stuck program on a multi-tenant
  /// server is attributable without a debugger. Empty = untenanted.
  std::string tag;
};

struct ProgramStats {
  std::uint64_t control_events = 0;   ///< lock hand-offs done by controls
  std::uint64_t control_inline_grants = 0;  ///< hand-offs granted inline
  std::size_t control_shards = 0;     ///< event shards of the control plane
  /// Grant-time page migrations performed for location buffers (owner
  /// fix-ups + adaptive follow-the-writer moves), summed over locations.
  std::uint64_t data_transfers = 0;
  /// Location buffers bound to their owner's NUMA node at placement time.
  std::size_t locations_bound = 0;
  std::size_t compute_threads_bound = 0;
  std::size_t control_threads_bound = 0;
  std::size_t bind_failures = 0;
  /// Guard teardowns of this program's handles that had to swallow a
  /// throwing release (see rt::guard_teardown_failures; snapshot taken
  /// at the end of run()).
  std::uint64_t guard_teardown_failures = 0;
  bool affinity_applied = false;
  /// Algorithm 1 could not run (e.g. asymmetric host topology) and the
  /// module fell back to the compact-cores placement.
  bool affinity_fallback = false;

  // ---- online re-placement (ORWL_REPLACE) --------------------------------
  /// Times Algorithm 1 actually ran (placements computed). The version
  /// stamp makes repeated affinity_compute() calls on an unchanged graph
  /// hit 1, not N.
  std::uint64_t placement_recomputes = 0;
  /// Divergence checks performed at run_iterations boundaries.
  std::uint64_t replace_checks = 0;
  /// Checks whose divergence exceeded the threshold (passive mode stops
  /// here; auto mode continues into a re-placement).
  std::uint64_t replace_triggers = 0;
  /// Re-placements performed (auto mode only).
  std::uint64_t replacements = 0;
  /// Lock hand-offs observed by the measurement meter.
  std::uint64_t measured_handoffs = 0;
  /// The subset of measured hand-offs crossing NUMA nodes.
  std::uint64_t measured_remote_handoffs = 0;
  /// Placed locations whose buffer was hint-only/zero-sized at binding
  /// time: Location::bind_home would silently no-op on them, so they are
  /// skipped and counted here instead of inflating locations_bound.
  std::size_t locations_skipped_unsized = 0;

  // ---- runtime arenas + futex parking (ORWL_ARENA / ORWL_FUTEX) ----------
  /// Backing bytes the per-shard arenas reserved from the OS (0 when
  /// ORWL_ARENA=off — the legacy heap path).
  std::uint64_t arena_bytes = 0;
  /// Slab/large-mapping refills across all shard arenas.
  std::uint64_t arena_refills = 0;
  /// Refills whose node-bound pages the host could have placed on the
  /// requested node but did not (fixture-only nodes are not misses).
  std::uint64_t arena_node_misses = 0;
  /// Futex sleeps entered by blocked acquirers and control workers
  /// (0 when ORWL_FUTEX=0 — the condvar path).
  std::uint64_t futex_waits = 0;
  /// Futex wake calls issued by granters and event posters.
  std::uint64_t futex_wakes = 0;
  /// Arena allocations served from a thread-local magazine, no mutex
  /// (0 when ORWL_ARENA=off or no thread registered a magazine).
  std::uint64_t arena_magazine_hits = 0;

  // ---- work-stealing executor (ORWL_STEAL) -------------------------------
  /// Items executed by the for_each steal executor (workers + lenders).
  std::uint64_t steal_executed = 0;
  /// Steals served by a victim on the thief's own NUMA node.
  std::uint64_t steal_local = 0;
  /// Steals that crossed NUMA nodes (victim order puts these last).
  std::uint64_t steal_remote = 0;
  /// Items executed by lock-blocked threads lending their PU.
  std::uint64_t steal_lent = 0;
  /// Executor worker sleeps after an exhausted spin budget.
  std::uint64_t steal_parks = 0;
  /// Control-plane event batches an idle shard stole from a hot sibling
  /// before falling back to sleeping.
  std::uint64_t shard_steals = 0;
};

class Program {
 public:
  explicit Program(std::size_t num_tasks, ProgramOptions opts = {});
  ~Program();
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Same body for every task (SPMD, like the C library's main task).
  void set_task_body(TaskFn fn);
  /// Override the body of one task.
  void set_task_body(TaskId id, TaskFn fn);

  /// Spawn one thread per task, run all bodies to completion, join.
  /// Rethrows the first task exception, if any.
  void run();

  // ---- introspection -----------------------------------------------------
  std::size_t num_tasks() const noexcept { return num_tasks_; }
  std::size_t locations_per_task() const noexcept {
    return opts_.locations_per_task;
  }
  std::size_t num_control_threads() const noexcept {
    return control_->num_threads();
  }
  std::size_t num_control_shards() const noexcept {
    return control_->num_shards();
  }
  /// The PU -> shard partition the control plane routes by.
  const topo::ShardMap& shard_map() const noexcept { return shard_map_; }

  /// The node-bound arena of control shard `s` (runtime-internal memory:
  /// queue windows, event deques, meter banks). Throws std::out_of_range
  /// on a bad shard index.
  Arena& shard_arena(std::size_t s) { return *arenas_.at(s); }
  Location& location(TaskId task, std::size_t slot = 0);
  const topo::Topology& topology() const noexcept { return *topology_; }
  bool affinity_enabled() const noexcept { return affinity_enabled_; }

  /// The resolved data-transfer policy (options/env, fixed at
  /// construction).
  DataTransferPolicy data_transfer() const noexcept { return data_policy_; }

  /// NUMA node (in this program's topology) of the task's placed PU.
  /// \param t Task id.
  /// \return The node's logical index, or -1 while the task is unplaced
  ///         or the topology has no NUMA level.
  int placed_node_of_task(TaskId t) const noexcept {
    return t < num_tasks_ ? task_node_[t].load(std::memory_order_acquire)
                          : -1;
  }
  bool dry_run() const noexcept { return opts_.dry_run; }
  bool scheduled() const noexcept { return scheduled_; }

  // ---- online re-placement (the measured-matrix feedback loop) ------------

  // ---- work stealing (the for_each executor) ------------------------------

  /// Resolved steal policy and spin budget (options/env, fixed at
  /// construction); the orwl facade builds its executor from these.
  StealMode steal_mode() const noexcept { return steal_mode_; }
  std::size_t steal_spin() const noexcept { return steal_spin_; }

  /// Install the hook run() uses to fold executor counters into
  /// stats() after the tasks join (set once by the facade when a
  /// program first uses for_each; not thread-safe against itself).
  void set_steal_stats_source(std::function<void(ProgramStats&)> fn) {
    steal_stats_source_ = std::move(fn);
  }

  /// The resolved re-placement policy (options/env, fixed at
  /// construction).
  ReplaceMode replace_mode() const noexcept { return replace_policy_; }
  double replace_threshold() const noexcept { return replace_threshold_; }
  double replace_decay() const noexcept { return replace_decay_; }
  std::size_t replace_interval() const noexcept { return replace_interval_; }

  /// The hand-off meter; null under ReplaceMode::Off.
  CommMeter* comm_meter() noexcept { return meter_.get(); }

  /// Iteration-boundary hook of the feedback loop: every task calls this
  /// once per run_iterations iteration. Cheap (one relaxed increment)
  /// until the check interval elapses; then exactly one caller harvests
  /// the meter, evaluates the divergence and — under ReplaceMode::Auto —
  /// re-places the program. Never throws; a failed check is dropped.
  void replace_tick() noexcept;

  /// Snapshot of the decaying measured communication matrix (empty until
  /// the first harvest).
  tm::CommMatrix measured_matrix() const;

  /// Live re-placement count (also snapshotted into stats() at the end
  /// of run()).
  std::uint64_t replacements() const noexcept {
    return replacements_.load(std::memory_order_relaxed);
  }

  /// Live count of Algorithm 1 runs (also snapshotted into stats()).
  /// Lets version-stamp tests observe skipped recomputes before run().
  std::uint64_t placement_recomputes() const noexcept {
    return placement_recomputes_.load(std::memory_order_relaxed);
  }

  /// Version of the task-location graph: bumped by every declared or
  /// registered insert. The matrix and the placement are stamped with the
  /// version they were computed from, so an affinity_compute() against an
  /// unchanged graph skips the Algorithm 1 recompute entirely.
  std::uint64_t graph_version() const noexcept {
    return graph_version_.load(std::memory_order_acquire);
  }

  /// Frozen at schedule(); live inserts afterwards keep appending to it.
  const TaskGraph& graph() const;

  // ---- declarative pre-registration (the v2 facade hook) ------------------

  /// Link `handle` to `loc` for `task` *before* run(): the access enters
  /// the task-location graph immediately, so dependency_get() /
  /// affinity_compute() work without executing any task body (no dry-run
  /// pass). The handle receives its ticket at the schedule barrier like
  /// a body-inserted one; it must outlive the program's run().
  /// Used by orwl::ProgramBuilder; task bodies keep using Handle inserts.
  /// \throws std::logic_error when the handle is linked or the program
  ///         already scheduled; std::out_of_range for a bad task id.
  void declare_insert(TaskId task, Location& loc, AccessMode mode,
                      std::uint64_t priority, Handle& handle);

  /// Live count of swallowed guard-teardown releases on this program's
  /// handles (also snapshotted into stats() at the end of run()).
  std::uint64_t guard_teardown_failures() const noexcept {
    return teardown_failures_.load(std::memory_order_relaxed);
  }

  // ---- the advanced affinity API (Sec. IV-B) ------------------------------
  // "None of the functions of that API take parameters or return values,
  // they only change the internal state of the ORWL runtime."

  /// orwl_dependency_get: (re)compute the communication matrix from the
  /// current task-location graph. Before schedule() the matrix is built
  /// from the declared (pending) accesses, so a declaratively wired
  /// program can extract its graph without a dry-run execution.
  void dependency_get();

  /// orwl_affinity_compute: (re)run Algorithm 1 on the current matrix.
  void affinity_compute();

  /// orwl_affinity_set: bind all live compute and control threads
  /// according to the computed placement.
  void affinity_set();

  const tm::CommMatrix& comm_matrix() const;
  const tm::Placement& placement() const;
  /// Whether affinity_compute() has produced a placement (placement()
  /// throws until then).
  bool have_placement() const noexcept { return have_placement_; }
  const ProgramStats& stats() const noexcept { return stats_; }

 private:
  friend class TaskContext;
  friend class Handle;

  struct PendingInsert {
    LocationId loc;
    AccessMode mode;
    std::uint64_t priority;
    TaskId task;
    std::uint64_t seq;  ///< per-task insertion order (stable tie-break)
    Handle* handle;
  };

  /// Called by Handle inserts before schedule; enqueues live afterwards.
  void register_insert(TaskId task, Location& loc, AccessMode mode,
                       std::uint64_t priority, Handle* handle);

  /// Called by Handle::release_for_teardown when a guard had to swallow.
  void note_teardown_failure() noexcept {
    teardown_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Called by Handle::acquire when the meter is on: attribute one lock
  /// hand-off `from` -> `to` on `loc` to the measured matrix.
  void record_handoff(TaskId from, TaskId to, const Location& loc) noexcept;

  /// The orwl_schedule barrier.
  void schedule_barrier(TaskId tid);

  /// Leader-only work at the barrier: sort + enqueue pending requests,
  /// freeze the graph, run the affinity module when enabled.
  void freeze_and_place();

  /// Bind the calling (task) thread according to the placement.
  void bind_self(TaskId tid);

  std::vector<int> control_associates() const;

  /// Associates realigned so that control thread j (serving shard
  /// j % num_shards) manages a task whose queues route to that shard.
  std::vector<int> shard_aligned_associates(const tm::Placement& p) const;

  /// Shard serving `owner`'s compute PU under the current placement
  /// (falling back to owner round-robin when unplaced). Caller holds
  /// place_mu_.
  std::size_t shard_for_owner_locked(TaskId owner) const;

  /// Route every location's hand-off events to the shard of its owner's
  /// compute PU (falling back to owner round-robin when unplaced).
  /// Caller holds place_mu_.
  void route_queues_locked();

  /// Route one location under the current placement and bind its buffer
  /// to the owner's placed node. Used for live inserts (dynamic mode), so
  /// a location first touched after schedule() reaches its owner's shard
  /// and memory immediately instead of keeping the constructor defaults
  /// until the next affinity_compute().
  void route_queue(Location& loc);

  /// Refresh task_node_ (NUMA node per task) from the current placement.
  /// Caller holds place_mu_.
  void update_task_nodes_locked();

  /// Bind every location buffer to its owner's placed NUMA node (the
  /// memory side of affinity_compute; re-run on dynamic re-placement).
  /// Hint-only/zero-sized buffers are skipped and counted — bind_home
  /// would silently no-op on them. Caller holds place_mu_.
  void bind_location_memory_locked();

  /// Algorithm 1 on an explicit matrix, plus everything that must follow
  /// a new placement: queue re-routing, task-node refresh, memory
  /// binding. Caller holds place_mu_. The core shared by the declared
  /// path (affinity_compute) and the measured path (check_replacement).
  void compute_placement_locked(const tm::CommMatrix& m);

  /// Re-bind live compute and control threads to the current placement
  /// (the body of affinity_set; re-run after an online re-placement).
  /// Caller holds place_mu_.
  void bind_threads_locked();

  /// The single-flight body of replace_tick: harvest the meter, compare
  /// the measured matrix against the one the current placement was
  /// computed from, and re-place under ReplaceMode::Auto.
  void check_replacement();

  const std::size_t num_tasks_;
  ProgramOptions opts_;
  topo::Topology owned_topology_;        // when detected
  const topo::Topology* topology_;       // never null after ctor
  bool affinity_enabled_;
  DataTransferPolicy data_policy_ = DataTransferPolicy::Off;

  /// NUMA node of each task's placed PU (-1 unplaced); written under
  /// place_mu_, read lock-free by the write-release fast path.
  std::unique_ptr<std::atomic<int>[]> task_node_;

  /// One node-bound arena per control shard, backing that shard's
  /// queues, event deque and meter bank. Declared before locations_ and
  /// control_: the arenas must be destroyed last, after everything that
  /// frees into them.
  std::vector<int> shard_nodes_;  ///< NUMA node of each shard's PUs
  std::vector<std::unique_ptr<Arena>> arenas_;

  std::vector<std::unique_ptr<Location>> locations_;
  std::unique_ptr<ControlPlane> control_;
  topo::ShardMap shard_map_;
  std::vector<TaskFn> bodies_;

  // Insert registration (guarded by graph_mu_).
  mutable std::mutex graph_mu_;
  std::vector<PendingInsert> pending_;
  std::vector<std::uint64_t> insert_seq_;  // per task
  TaskGraph graph_;
  bool scheduled_ = false;

  // Barrier state.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::size_t barrier_arrived_ = 0;
  std::size_t barrier_generation_ = 0;
  std::exception_ptr barrier_error_;

  // Placement state (guarded by place_mu_ for the dynamic API).
  mutable std::mutex place_mu_;
  tm::CommMatrix matrix_;
  bool have_matrix_ = false;
  tm::Placement placement_;
  bool have_placement_ = false;

  // Version stamps: the graph version the matrix / placement were
  // computed from (~0 = never). graph_version_ is bumped under graph_mu_;
  // the stamps are guarded by place_mu_.
  static constexpr std::uint64_t kNeverComputed = ~std::uint64_t{0};
  std::atomic<std::uint64_t> graph_version_{0};
  std::uint64_t matrix_version_ = kNeverComputed;
  std::uint64_t placement_version_ = kNeverComputed;

  // Online re-placement state. The measured matrix and the matrix the
  // current placement was computed from (declared at first, measured
  // after a re-placement — the trigger compares against what the
  // placement actually optimizes) are guarded by place_mu_.
  ReplaceMode replace_policy_ = ReplaceMode::Off;
  double replace_threshold_ = 0.25;
  double replace_decay_ = 0.5;
  std::size_t replace_interval_ = 16;
  StealMode steal_mode_ = StealMode::All;
  std::size_t steal_spin_ = 64;
  std::function<void(ProgramStats&)> steal_stats_source_;
  std::unique_ptr<CommMeter> meter_;
  tm::CommMatrix measured_;
  tm::CommMatrix placement_matrix_;
  std::atomic<std::uint64_t> replace_ticks_{0};
  std::atomic<bool> replace_busy_{false};
  std::atomic<std::uint64_t> replace_checks_{0};
  std::atomic<std::uint64_t> replace_triggers_{0};
  std::atomic<std::uint64_t> replacements_{0};
  std::atomic<std::uint64_t> placement_recomputes_{0};

  // Thread registry for affinity_set.
  std::vector<std::thread::native_handle_type> task_handles_;
  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> teardown_failures_{0};
  ProgramStats stats_;
};

/// Per-task view of the program — the argument of every task body.
class TaskContext {
 public:
  TaskId id() const noexcept { return id_; }             ///< orwl_mytid
  std::size_t num_tasks() const noexcept { return prog_->num_tasks(); }
  Program& program() noexcept { return *prog_; }

  /// Location `slot` of task `task` (ORWL_LOCATION(task, slot)).
  Location& location(TaskId task, std::size_t slot = 0) {
    return prog_->location(task, slot);
  }
  Location& my_location(std::size_t slot = 0) {
    return prog_->location(id_, slot);
  }

  /// orwl_scale for one of the task's own locations.
  void scale(std::size_t bytes, std::size_t slot = 0) {
    my_location(slot).scale(bytes);
  }

  /// Size-only scale for dry-run graph extraction (no allocation).
  void scale_hint(std::size_t bytes, std::size_t slot = 0) {
    my_location(slot).scale_hint(bytes);
  }

  /// orwl_schedule: synchronize and coordinate the requests of all tasks.
  void schedule() { prog_->schedule_barrier(id_); }

  /// True when the program only extracts the graph; bodies should return
  /// right after schedule() in that case.
  bool dry_run() const noexcept { return prog_->dry_run(); }

 private:
  friend class Program;
  TaskContext(Program& p, TaskId id) : prog_(&p), id_(id) {}
  Program* prog_;
  TaskId id_;
};

}  // namespace orwl::rt
