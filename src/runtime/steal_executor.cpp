#include "runtime/steal_executor.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "runtime/comm_meter.hpp"
#include "runtime/futex.hpp"
#include "support/env.hpp"

namespace orwl::rt {

namespace {

/// Process-wide lending target (the executor of the active session).
std::atomic<StealExecutor*> g_current{nullptr};

/// Reentrancy guard: a lent item that blocks on a lock parks normally
/// instead of lending again (a nested loan would stack loans on the
/// lender's stack with no bound).
thread_local bool tl_lending = false;

/// Set while a thread is inside run_worker, so a worker blocked on a
/// lock inside an item body lends through its own deque and victim
/// order instead of the anonymous lender path.
thread_local StealExecutor::WorkerContext* tl_worker_ctx = nullptr;

}  // namespace

const char* to_string(StealMode m) noexcept {
  switch (m) {
    case StealMode::Off:
      return "off";
    case StealMode::Node:
      return "node";
    case StealMode::All:
      return "all";
    case StealMode::FromEnv:
      return "fromenv";
  }
  return "?";
}

StealMode resolve_steal_mode(StealMode from_options) {
  if (from_options != StealMode::FromEnv) return from_options;
  const auto v = support::env_string(kStealEnvVar);
  if (v.has_value() && !v->empty()) {
    if (support::iequals(*v, "off")) return StealMode::Off;
    if (support::iequals(*v, "node")) return StealMode::Node;
    if (support::iequals(*v, "all")) return StealMode::All;
    support::throw_bad_env(kStealEnvVar, *v, "off, node or all");
  }
  return StealMode::All;
}

std::size_t resolve_steal_spin(std::size_t from_options) {
  if (from_options != 0) return from_options;
  const long env = support::env_long(kStealSpinEnvVar, -1);
  return env > 0 ? static_cast<std::size_t>(env) : 64;
}

void StealExecutor::WorkerContext::push(std::uint64_t item) {
  if (deque_ != nullptr && deque_->push(item)) {
    ex_->notify_work();
    return;
  }
  // Full ring (or an anonymous lender): keep the item thread-local; the
  // run loop drains overflow before popping or stealing anything else.
  overflow_.push_back(item);
}

StealExecutor::StealExecutor(const topo::Topology& t,
                             std::vector<WorkerSpec> workers, Config cfg)
    : cfg_(cfg), use_futex_(futex_enabled_from_env()) {
  if (workers.empty()) {
    throw std::invalid_argument("StealExecutor: no workers");
  }
  if (cfg_.mode == StealMode::FromEnv) {
    throw std::invalid_argument(
        "StealExecutor: mode must be resolved before construction");
  }

  const int numa_depth =
      t.empty() ? -1 : t.depth_of_type(topo::ObjType::NumaNode);
  const auto node_of_pu = [&](int pu) {
    if (numa_depth < 0) return 0;
    const topo::Object* leaf = t.pu_at(pu);
    const topo::Object* node =
        leaf ? leaf->ancestor_of_type(topo::ObjType::NumaNode) : nullptr;
    return node ? node->logical_index : 0;
  };
  std::size_t num_nodes = 1;
  if (numa_depth >= 0) num_nodes = t.at_depth(numa_depth).size();
  node_active_ = std::vector<NodeCounter>(num_nodes);

  // Per-worker state: deque slots from the worker's shard arena.
  state_.reserve(workers.size());
  std::vector<std::vector<std::uint32_t>> workers_on_pu(
      t.empty() ? 1 : t.num_pus());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    auto ws = std::make_unique<WorkerState>();
    ws->pu = workers[w].pu;
    ws->node = node_of_pu(ws->pu);
    Arena& a = workers[w].arena != nullptr ? *workers[w].arena
                                           : Arena::runtime_default();
    ws->deque = arena_new<StealDeque>(a, a, cfg_.deque_capacity);
    if (ws->pu >= 0 &&
        static_cast<std::size_t>(ws->pu) < workers_on_pu.size()) {
      workers_on_pu[static_cast<std::size_t>(ws->pu)].push_back(
          static_cast<std::uint32_t>(w));
    }
    state_.push_back(std::move(ws));
  }

  // Victim order per worker: co-resident workers (same PU) first, then
  // the PUs of the precomputed topology row, nearest first. The row's
  // NUMA-local prefix (plus the co-residents) is the local prefix here.
  const topo::VictimTable table =
      t.empty() ? topo::VictimTable{} : topo::make_victim_table(t);
  for (std::size_t w = 0; w < state_.size(); ++w) {
    WorkerState& ws = *state_[w];
    if (ws.pu >= 0 &&
        static_cast<std::size_t>(ws.pu) < workers_on_pu.size()) {
      for (std::uint32_t other :
           workers_on_pu[static_cast<std::size_t>(ws.pu)]) {
        if (other != w) ws.victims.push_back(other);
      }
    } else {
      // PU outside the topology: every other worker, declaration order.
      for (std::size_t v = 0; v < state_.size(); ++v) {
        if (v != w) ws.victims.push_back(static_cast<std::uint32_t>(v));
      }
      ws.local_victims = ws.victims.size();
      continue;
    }
    const auto row = table.row(static_cast<std::size_t>(ws.pu));
    const std::size_t row_local =
        table.local_count(static_cast<std::size_t>(ws.pu));
    ws.local_victims = ws.victims.size();  // co-residents are local
    for (std::size_t i = 0; i < row.size(); ++i) {
      for (std::uint32_t other :
           workers_on_pu[static_cast<std::size_t>(row[i])]) {
        ws.victims.push_back(other);
        if (i < row_local) ++ws.local_victims;
      }
    }
  }

  lender_victims_.resize(state_.size());
  for (std::size_t w = 0; w < state_.size(); ++w) {
    lender_victims_[w] = static_cast<std::uint32_t>(w);
  }
}

StealExecutor::~StealExecutor() {
  end_session();
  for (auto& ws : state_) arena_delete(ws->deque);
}

void StealExecutor::seed(std::size_t w, std::uint64_t item) {
  WorkerState& ws = *state_.at(w);
  if (!ws.deque->push(item)) ws.seed_spill.push_back(item);
}

void StealExecutor::begin_session(const ItemFn& fn) {
  session_fn_.store(&fn, std::memory_order_release);
  StealExecutor* expected = nullptr;
  g_current.compare_exchange_strong(expected, this,
                                    std::memory_order_acq_rel);
}

void StealExecutor::end_session() {
  StealExecutor* expected = this;
  g_current.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
  session_fn_.store(nullptr, std::memory_order_release);
}

StealExecutor* StealExecutor::current() noexcept {
  return g_current.load(std::memory_order_acquire);
}

void StealExecutor::activate(int node) noexcept {
  auto& counter = node_active_[static_cast<std::size_t>(node)].active;
  if (counter.fetch_add(1, std::memory_order_acq_rel) == 0) {
    root_active_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void StealExecutor::deactivate(int node) noexcept {
  auto& counter = node_active_[static_cast<std::size_t>(node)].active;
  if (counter.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (root_active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Global quiescence: broadcast so parked workers run their exit
      // check instead of sleeping out their timeout.
      work_seq_.fetch_add(1, std::memory_order_release);
      futex_wake(work_seq_, /*all=*/true);
    }
  }
}

void StealExecutor::notify_work() noexcept {
  if (parked_.load(std::memory_order_acquire) > 0) {
    work_seq_.fetch_add(1, std::memory_order_release);
    futex_wake(work_seq_, /*all=*/true);
  }
}

bool StealExecutor::sweep(const std::vector<std::uint32_t>& order,
                          std::size_t limit, std::uint64_t& item,
                          int& victim_node,
                          std::uint32_t& victim_worker) noexcept {
  const std::size_t n = limit < order.size() ? limit : order.size();
  for (std::size_t i = 0; i < n; ++i) {
    WorkerState& v = *state_[order[i]];
    if (v.deque->steal(item)) {
      victim_node = v.node;
      victim_worker = order[i];
      return true;
    }
  }
  return false;
}

void StealExecutor::set_meter(CommMeter* meter,
                              std::size_t num_tasks) noexcept {
  meter_tasks_.store(num_tasks, std::memory_order_relaxed);
  meter_.store(meter, std::memory_order_release);
}

void StealExecutor::meter_steal(std::size_t thief, std::uint32_t victim,
                                bool remote) noexcept {
  CommMeter* meter = meter_.load(std::memory_order_acquire);
  if (meter == nullptr) return;
  const std::size_t tasks = meter_tasks_.load(std::memory_order_relaxed);
  if (thief >= tasks || victim >= tasks || thief == victim) return;
  // Any shard bank is valid; spreading by the thief's termination-tree
  // node keeps concurrent thieves on different nodes off one cache line.
  const std::size_t shard =
      static_cast<std::size_t>(state_[thief]->node) % meter->num_shards();
  meter->record(shard, static_cast<TaskId>(victim),
                static_cast<TaskId>(thief), kStealBytes, remote);
}

void StealExecutor::execute(const ItemFn& fn, std::uint64_t item,
                            WorkerContext& ctx) {
  fn(item, ctx);
}

void StealExecutor::run_worker(std::size_t w, const ItemFn& fn) {
  WorkerState& ws = *state_.at(w);
  WorkerContext ctx(*this, w, ws.deque);
  ctx.overflow_ = std::move(ws.seed_spill);
  ws.seed_spill.clear();
  WorkerContext* const prev_ctx = tl_worker_ctx;
  tl_worker_ctx = &ctx;

  const std::size_t steal_limit = cfg_.mode == StealMode::All
                                      ? ws.victims.size()
                                      : cfg_.mode == StealMode::Node
                                            ? ws.local_victims
                                            : 0;
  bool active = false;
  std::size_t fruitless = 0;
  for (;;) {
    // Active from before an item is taken until a full sweep came up
    // empty: a non-empty deque always has an active owner or thief, so
    // root==0 really means "no work anywhere".
    if (!active) {
      activate(ws.node);
      active = true;
    }
    std::uint64_t item = 0;
    int victim_node = ws.node;
    std::uint32_t victim_worker = 0;
    bool got = false;
    bool stolen = false;
    if (!ctx.overflow_.empty()) {
      item = ctx.overflow_.back();
      ctx.overflow_.pop_back();
      got = true;
    } else if (ws.deque->pop(item)) {
      got = true;
    } else if (sweep(ws.victims, steal_limit, item, victim_node,
                     victim_worker)) {
      got = true;
      stolen = true;
    }
    if (got) {
      fruitless = 0;
      if (stolen) {
        (victim_node == ws.node ? ws.local_steals : ws.remote_steals)
            .fetch_add(1, std::memory_order_relaxed);
        meter_steal(w, victim_worker, victim_node != ws.node);
      }
      execute(fn, item, ctx);
      ws.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    deactivate(ws.node);
    active = false;
    // Own deque is empty (the pop above failed and only the owner
    // pushes), so quiescence means nothing anywhere can still need us.
    if (quiescent()) break;
    if (++fruitless >= cfg_.spin) {
      ws.parks.fetch_add(1, std::memory_order_relaxed);
      parked_.fetch_add(1, std::memory_order_acq_rel);
      const std::uint32_t seq = work_seq_.load(std::memory_order_acquire);
      if (!quiescent()) {
        if (use_futex_) {
          futex_wait(work_seq_, seq, /*timeout_ms=*/10);
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      parked_.fetch_sub(1, std::memory_order_acq_rel);
      fruitless = 0;
    } else {
      std::this_thread::yield();
    }
  }
  tl_worker_ctx = prev_ctx;
}

std::uint64_t StealExecutor::lend(const std::function<bool()>& give_up) {
  if (tl_lending) return 0;
  const ItemFn* const fn = session_fn_.load(std::memory_order_acquire);
  if (fn == nullptr) return 0;

  // Reuse the worker identity when the blocked thread *is* one of this
  // executor's workers (a worker whose item body blocked on a lock):
  // its deque, victim order and node stay valid on its own thread.
  WorkerContext* const wctx =
      (tl_worker_ctx != nullptr && tl_worker_ctx->ex_ == this)
          ? tl_worker_ctx
          : nullptr;
  if (wctx == nullptr && cfg_.mode != StealMode::All) {
    // Anonymous lenders have no topology position, so Node mode cannot
    // scope their victims; only the full order is meaningful.
    return 0;
  }

  tl_lending = true;
  WorkerContext local(*this, state_.size(), nullptr);
  WorkerContext& ctx = wctx != nullptr ? *wctx : local;
  const int my_node = wctx != nullptr ? state_[ctx.worker_]->node : 0;

  // Rotate the lender order per loan so concurrent lenders fan out.
  std::vector<std::uint32_t> rotated;
  const std::vector<std::uint32_t>* order = nullptr;
  std::size_t limit = 0;
  if (wctx != nullptr) {
    const WorkerState& ws = *state_[ctx.worker_];
    order = &ws.victims;
    limit = cfg_.mode == StealMode::All
                ? ws.victims.size()
                : cfg_.mode == StealMode::Node ? ws.local_victims : 0;
  } else {
    const std::uint32_t rot =
        lender_rotation_.fetch_add(1, std::memory_order_relaxed);
    rotated.reserve(lender_victims_.size());
    for (std::size_t i = 0; i < lender_victims_.size(); ++i) {
      rotated.push_back(
          lender_victims_[(i + rot) % lender_victims_.size()]);
    }
    order = &rotated;
    limit = rotated.size();
  }

  std::uint64_t ran = 0;
  bool active = false;
  std::size_t fruitless = 0;
  while (!give_up() && fruitless < cfg_.spin) {
    if (session_fn_.load(std::memory_order_acquire) != fn) break;
    if (!active) {
      activate(my_node);
      active = true;
    }
    std::uint64_t item = 0;
    int victim_node = my_node;
    std::uint32_t victim_worker = 0;
    bool got = false;
    if (!ctx.overflow_.empty()) {
      item = ctx.overflow_.back();
      ctx.overflow_.pop_back();
      got = true;
    } else if (ctx.deque_ != nullptr && ctx.deque_->pop(item)) {
      got = true;
    } else if (sweep(*order, limit, item, victim_node, victim_worker)) {
      got = true;
    }
    if (!got) {
      deactivate(my_node);
      active = false;
      if (quiescent()) break;
      ++fruitless;
      std::this_thread::yield();
      continue;
    }
    fruitless = 0;
    execute(*fn, item, ctx);
    ++ran;
  }
  // Items parked in a pure lender's overflow are invisible to everyone
  // else — run them before handing the thread back to the lock path.
  // (A worker's own context keeps its overflow; run_worker drains it.)
  if (wctx == nullptr) {
    while (!local.overflow_.empty()) {
      if (!active) {
        activate(my_node);
        active = true;
      }
      const std::uint64_t item = local.overflow_.back();
      local.overflow_.pop_back();
      execute(*fn, item, local);
      ++ran;
    }
  }
  if (active) deactivate(my_node);
  lend_executed_.fetch_add(ran, std::memory_order_relaxed);
  tl_lending = false;
  return ran;
}

StealExecutor::Stats StealExecutor::stats() const noexcept {
  Stats s;
  for (const auto& ws : state_) {
    s.executed += ws->executed.load(std::memory_order_relaxed);
    s.local_steals += ws->local_steals.load(std::memory_order_relaxed);
    s.remote_steals += ws->remote_steals.load(std::memory_order_relaxed);
    s.parks += ws->parks.load(std::memory_order_relaxed);
  }
  s.lend_executed = lend_executed_.load(std::memory_order_relaxed);
  s.executed += s.lend_executed;
  return s;
}

}  // namespace orwl::rt
