#include "runtime/control_plane.hpp"

#include "runtime/request_queue.hpp"
#include "topo/binding.hpp"
#include "topo/cpuset.hpp"

namespace orwl::rt {

ControlPlane::ControlPlane(std::size_t nthreads) : num_threads_(nthreads) {}

ControlPlane::~ControlPlane() { stop(); }

void ControlPlane::start() {
  if (num_threads_ == 0 || running_) return;
  {
    std::unique_lock lock(mu_);
    stopping_ = false;
  }
  threads_.reserve(num_threads_);
  for (std::size_t i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  running_ = true;
}

void ControlPlane::stop() {
  if (!running_) return;
  // Flip running_ first: new releases fall back to inline grants, so no
  // event posted after this point is lost.
  running_ = false;
  {
    std::unique_lock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Drain any leftover events inline so no waiter stays ungranted.
  std::deque<RequestQueue*> leftovers;
  {
    std::unique_lock lock(mu_);
    leftovers.swap(events_);
  }
  for (RequestQueue* q : leftovers) q->grant_from_control();
}

void ControlPlane::post(RequestQueue* q) {
  {
    std::unique_lock lock(mu_);
    if (stopping_) {
      // Late event during shutdown: grant inline.
      lock.unlock();
      q->grant_from_control();
      return;
    }
    events_.push_back(q);
  }
  cv_.notify_one();
}

void ControlPlane::worker_loop() {
  for (;;) {
    RequestQueue* q = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !events_.empty(); });
      if (events_.empty()) {
        if (stopping_) return;
        continue;
      }
      q = events_.front();
      events_.pop_front();
    }
    q->grant_from_control();
    events_processed_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ControlPlane::bind_threads(const std::vector<int>& pus) {
  if (pus.empty()) return 0;
  std::size_t bound = 0;
  for (std::size_t j = 0; j < threads_.size(); ++j) {
    const int pu = pus[j % pus.size()];
    if (pu < 0) continue;
    if (topo::bind_thread(threads_[j].native_handle(),
                          topo::CpuSet::single(pu))) {
      ++bound;
    }
  }
  return bound;
}

}  // namespace orwl::rt
