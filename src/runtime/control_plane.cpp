#include "runtime/control_plane.hpp"

#include <algorithm>

#include "runtime/futex.hpp"
#include "runtime/request_queue.hpp"
#include "topo/binding.hpp"
#include "topo/cpuset.hpp"

namespace orwl::rt {

namespace {

// A queue that posted several events into one drained batch needs only a
// single grant pass: every release behind those posts already happened,
// so one grant_from_control covers them all without re-taking the
// queue's mutex per duplicate event.
template <typename QueueVec>
void dedupe_queues(QueueVec& queues) {
  std::sort(queues.begin(), queues.end());
  queues.erase(std::unique(queues.begin(), queues.end()), queues.end());
}

bool resolve_futex(int use_futex) {
  if (use_futex < 0) return futex_enabled_from_env();
  return use_futex != 0 && futex_supported();
}

}  // namespace

std::size_t ControlPlane::effective_shards(const ControlPlaneOptions& opts) {
  if (opts.num_threads == 0) return 1;
  return std::clamp<std::size_t>(opts.num_shards, 1, opts.num_threads);
}

ControlPlane::ControlPlane(std::size_t nthreads)
    : ControlPlane([nthreads] {
        ControlPlaneOptions opts;
        opts.num_threads = nthreads;
        return opts;
      }()) {}

ControlPlane::ControlPlane(const ControlPlaneOptions& opts)
    : num_threads_(opts.num_threads),
      num_shards_(effective_shards(opts)),
      shard_capacity_(opts.shard_capacity),
      futex_(resolve_futex(opts.use_futex)) {
  shards_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Arena* arena = s < opts.shard_arenas.size() && opts.shard_arenas[s]
                       ? opts.shard_arenas[s]
                       : &Arena::runtime_default();
    shards_.push_back(std::make_unique<Shard>(arena));
  }
}

ControlPlane::~ControlPlane() { stop(); }

void ControlPlane::start() {
  if (num_threads_ == 0 || running()) return;
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mu);
    shard->stopping = false;
  }
  threads_.reserve(num_threads_);
  for (std::size_t j = 0; j < num_threads_; ++j) {
    threads_.emplace_back([this, j] { worker_loop(shard_of_thread(j)); });
  }
  running_.store(true, std::memory_order_release);
}

void ControlPlane::stop() {
  // Flip running_ first: new releases fall back to inline grants, so no
  // event posted after this point is lost.
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) {
    {
      std::unique_lock lock(shard->mu);
      shard->stopping = true;
    }
    wake_shard(*shard, /*all=*/true);
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Workers drain their shard before exiting and posts observe `stopping`
  // under the shard mutex, so leftovers here mean a worker died early;
  // grant them inline regardless (deduplicated, counted per event) so no
  // waiter stays ungranted.
  for (auto& shard : shards_) {
    EventDeque leftovers{ArenaAllocator<RequestQueue*>(shard->arena)};
    {
      std::unique_lock lock(shard->mu);
      leftovers.swap(shard->events);
      shard->size_hint.store(0, std::memory_order_relaxed);
    }
    std::vector<RequestQueue*> unique_queues(leftovers.begin(),
                                             leftovers.end());
    dedupe_queues(unique_queues);
    for (RequestQueue* q : unique_queues) q->grant_from_control();
    inline_grants_.fetch_add(leftovers.size(), std::memory_order_relaxed);
  }
}

void ControlPlane::wake_shard(Shard& shard, bool all) {
  if (futex_) {
    // The event push (or the stopping flag) was published under shard.mu
    // before this bump; a worker that re-checked its predicate before
    // the bump sees the seq change at futex_wait and returns.
    shard.seq.fetch_add(1, std::memory_order_release);
    futex_wake(shard.seq, all);
    shard.futex_wakes.fetch_add(1, std::memory_order_relaxed);
  } else if (all) {
    shard.cv.notify_all();
  } else {
    shard.cv.notify_one();
  }
}

void ControlPlane::post(RequestQueue* q, std::size_t shard_index) {
  if (running()) {
    Shard& shard = *shards_[shard_index % num_shards_];
    std::unique_lock lock(shard.mu);
    if (!shard.stopping &&
        (shard_capacity_ == 0 || shard.events.size() < shard_capacity_)) {
      shard.events.push_back(q);
      shard.size_hint.store(shard.events.size(), std::memory_order_relaxed);
      lock.unlock();
      wake_shard(shard, /*all=*/false);
      return;
    }
  }
  // Not running, stopping, or the shard is saturated: grant inline.
  q->grant_from_control();
  inline_grants_.fetch_add(1, std::memory_order_relaxed);
}

bool ControlPlane::steal_events(std::size_t self, EventDeque& out) {
  if (num_shards_ < 2) return false;
  // Pick the fullest sibling by its published size hint — no sibling
  // mutex is touched until one victim is chosen, and the caller holds no
  // shard mutex here, so two shard locks are never held at once.
  std::size_t victim = num_shards_;
  std::size_t best = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (s == self) continue;
    const std::size_t n = shards_[s]->size_hint.load(std::memory_order_relaxed);
    if (n > best) {
      best = n;
      victim = s;
    }
  }
  if (victim == num_shards_) return false;
  Shard& v = *shards_[victim];
  // try_lock: if the victim's own worker (or a poster) is active on the
  // shard right now, the events are already being taken care of.
  std::unique_lock lock(v.mu, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  const std::size_t take = (v.events.size() + 1) / 2;
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(v.events.front());  // oldest first: keep FIFO fairness
    v.events.pop_front();
  }
  v.size_hint.store(v.events.size(), std::memory_order_relaxed);
  return take > 0;
}

void ControlPlane::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  EventDeque batch{ArenaAllocator<RequestQueue*>(shard.arena)};
  std::vector<RequestQueue*> unique_queues;
  // Batched draining: grant every event of the wakeup outside the shard
  // mutex, so posters never wait behind grant work, deduplicated so a
  // busy queue is granted once per batch.
  const auto drain_batch = [&](bool stolen) {
    unique_queues.assign(batch.begin(), batch.end());
    dedupe_queues(unique_queues);
    for (RequestQueue* q : unique_queues) q->grant_from_control();
    shard.processed.fetch_add(batch.size(), std::memory_order_relaxed);
    shard.batches.fetch_add(1, std::memory_order_relaxed);
    if (stolen) shard.steals.fetch_add(batch.size(), std::memory_order_relaxed);
    batch.clear();
  };
  for (;;) {
    {
      std::unique_lock lock(shard.mu);
      if (futex_) {
        // Futex sleep without holding the mutex: snapshot the wakeup
        // word under the lock, drop it, and wait for the word to move.
        // Any post after the snapshot bumps seq, so the wait returns
        // immediately — no lost wakeup, and posters never queue behind
        // a sleeping worker's mutex.
        while (!shard.stopping && shard.events.empty()) {
          const std::uint32_t seq =
              shard.seq.load(std::memory_order_acquire);
          lock.unlock();
          // Before parking, lend a hand to a loaded sibling shard.
          if (steal_events(shard_index, batch)) {
            drain_batch(/*stolen=*/true);
            lock.lock();
            continue;
          }
          shard.futex_waits.fetch_add(1, std::memory_order_relaxed);
          futex_wait(shard.seq, seq, /*timeout_ms=*/0);
          lock.lock();
        }
      } else {
        while (!shard.stopping && shard.events.empty()) {
          lock.unlock();
          if (steal_events(shard_index, batch)) {
            drain_batch(/*stolen=*/true);
            lock.lock();
            continue;
          }
          lock.lock();
          shard.cv.wait(lock, [&] {
            return shard.stopping || !shard.events.empty();
          });
        }
      }
      if (shard.events.empty()) return;  // stopping and fully drained
      batch.swap(shard.events);
      shard.size_hint.store(0, std::memory_order_relaxed);
    }
    drain_batch(/*stolen=*/false);
  }
}

std::size_t ControlPlane::bind_threads(const std::vector<int>& pus) {
  if (pus.empty()) return 0;
  std::size_t bound = 0;
  for (std::size_t j = 0; j < threads_.size(); ++j) {
    const int pu = pus[j % pus.size()];
    if (pu < 0) continue;
    if (topo::bind_thread(threads_[j].native_handle(),
                          topo::CpuSet::single(pu))) {
      ++bound;
    }
  }
  return bound;
}

std::uint64_t ControlPlane::events_processed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->processed.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ControlPlane::drain_batches() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->batches.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ControlPlane::futex_waits() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->futex_waits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ControlPlane::futex_wakes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->futex_wakes.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ControlPlane::shard_steals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->steals.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace orwl::rt
