#include "runtime/location.hpp"

#include <algorithm>

#include "support/env.hpp"

namespace orwl::rt {

const char* to_string(DataTransferPolicy p) noexcept {
  switch (p) {
    case DataTransferPolicy::Off: return "off";
    case DataTransferPolicy::Owner: return "owner";
    case DataTransferPolicy::Adaptive: return "adaptive";
  }
  return "?";
}

void Location::scale(std::size_t bytes) {
  // ORWL_HUGEPAGES=1 requests MAP_HUGETLB storage for buffers that fill
  // at least one huge page (the matmul/dgemm-class locations the TLB
  // pressure comes from); MemBind falls back to normal pages when the
  // host has no hugetlb pool.
  const std::size_t huge = topo::MemBind::huge_page_size();
  buf_.set_huge_pages(huge > 0 && bytes >= huge &&
                      support::env_bool(topo::kHugePagesEnvVar, false));
  buf_.resize(bytes);
  size_ = bytes;
}

void Location::bind_home(int node) {
  const int old_home = home_node_.exchange(node, std::memory_order_acq_rel);
  if (policy_ == DataTransferPolicy::Off || node < 0) return;
  if (policy_ == DataTransferPolicy::Adaptive && old_home == node &&
      buf_.node() >= 0) {
    // Re-placement that did not move the owner: a buffer the adaptive
    // policy already parked next to its writers must not bounce back to
    // the home node just because affinity_compute() ran again.
    return;
  }
  buf_.bind_to(node);
  if (old_home != node) {
    // The placement moved: writer streaks recorded under the old
    // placement are stale, so the adaptive history restarts from scratch.
    writer_streak_.store(pack_streak(-1, 0), std::memory_order_release);
  }
}

void Location::note_writer_node(int node) noexcept {
  if (node < 0) return;  // unplaced writer: no evidence either way
  // Writers are serialized by the lock protocol, but bind_home() resets
  // the streak concurrently on re-placement — a plain store here could
  // overwrite that reset with history from the old placement, so the
  // update is a CAS loop that rebuilds from whatever it raced with.
  std::uint64_t cur = writer_streak_.load(std::memory_order_acquire);
  for (;;) {
    int streak = streak_node(cur);
    std::uint32_t count = streak_count(cur);
    if (node == streak) {
      // Saturate so a long-settled phase cannot build unbounded decay
      // debt: switching away after saturation takes at most
      // log2(2K) + K grants.
      count = std::min(count + 1, 2 * hysteresis_);
    } else if (count > 1) {
      count /= 2;  // decay toward switching, but keep the incumbent node
    } else {
      streak = node;
      count = 1;
    }
    if (writer_streak_.compare_exchange_weak(cur, pack_streak(streak, count),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      return;
    }
  }
}

void Location::before_grant() noexcept {
  if (policy_ == DataTransferPolicy::Off) return;
  int target = home_node_.load(std::memory_order_acquire);
  if (policy_ == DataTransferPolicy::Adaptive) {
    // Follow the writers: only a streak of K consecutive granted writers
    // on one node is evidence the producer settled there — then move the
    // pages next to it before waking the next grantee. A shorter streak
    // (one-off remote writers, ping-ponging writer sets) is noise: keep
    // whatever binding is in place rather than bouncing the pages back
    // to the home node and out again a few grants later. Only a location
    // that has never seen a placed writer falls back to the owner
    // binding.
    const std::uint64_t s = writer_streak_.load(std::memory_order_acquire);
    const int node = streak_node(s);
    const std::uint32_t count = streak_count(s);
    if (node >= 0 && count >= hysteresis_) {
      target = node;
    } else if (count > 0) {
      return;  // writers seen but streak below threshold: leave alone
    }
  }
  if (target < 0 || buf_.node() == target) return;
  if (buf_.size() == 0) return;  // hint-only/dry-run: no pages to move
  if (buf_.bind_to(target)) {
    transfers_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace orwl::rt
