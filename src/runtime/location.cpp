#include "runtime/location.hpp"

namespace orwl::rt {

const char* to_string(DataTransferPolicy p) noexcept {
  switch (p) {
    case DataTransferPolicy::Off: return "off";
    case DataTransferPolicy::Owner: return "owner";
    case DataTransferPolicy::Adaptive: return "adaptive";
  }
  return "?";
}

void Location::bind_home(int node) {
  const int old_home = home_node_.exchange(node, std::memory_order_acq_rel);
  if (policy_ == DataTransferPolicy::Off || node < 0) return;
  if (policy_ == DataTransferPolicy::Adaptive && old_home == node &&
      buf_.node() >= 0) {
    // Re-placement that did not move the owner: a buffer the adaptive
    // policy already parked next to its writers must not bounce back to
    // the home node just because affinity_compute() ran again.
    return;
  }
  buf_.bind_to(node);
  if (old_home != node) {
    // The placement moved: writer nodes recorded under the old placement
    // are stale, so the adaptive history restarts from scratch.
    last_writer_node_.store(-1, std::memory_order_release);
    prev_writer_node_.store(-1, std::memory_order_release);
  }
}

void Location::before_grant() noexcept {
  if (policy_ == DataTransferPolicy::Off) return;
  int target = home_node_.load(std::memory_order_acquire);
  if (policy_ == DataTransferPolicy::Adaptive) {
    // Follow the writers: when the last two granted writers ran on the
    // same node, the producer lives there — move the pages next to it
    // before waking the next grantee. An inconsistent history (a one-off
    // remote writer between settled phases) is noise: keep whatever
    // binding is in place rather than bouncing the pages back to the
    // home node and out again two grants later. Only a location that has
    // never seen a writer falls back to the owner binding.
    const int last = last_writer_node_.load(std::memory_order_acquire);
    const int prev = prev_writer_node_.load(std::memory_order_acquire);
    if (last >= 0 && last == prev) {
      target = last;
    } else if (last >= 0 || prev >= 0) {
      return;  // writers seen but unsettled: leave the pages alone
    }
  }
  if (target < 0 || buf_.node() == target) return;
  if (buf_.size() == 0) return;  // hint-only/dry-run: no pages to move
  if (buf_.bind_to(target)) {
    transfers_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace orwl::rt
