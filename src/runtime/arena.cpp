#include "runtime/arena.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "support/env.hpp"

namespace orwl::rt {

namespace {

// Size classes cover [64 B, 64 KiB] in powers of two; anything bigger
// (or bigger than half a slab, for small test arenas) gets a dedicated
// MemBind mapping. Class sizes include the per-allocation header.
constexpr std::size_t kMinClassShift = 6;                    // 64 B
constexpr std::size_t kMaxClassShift = 16;                   // 64 KiB
constexpr std::size_t kNumClasses =
    kMaxClassShift - kMinClassShift + 1;
constexpr std::uint32_t kClassLarge = 0xFFFFFFFEu;
constexpr std::uint32_t kClassHeap = 0xFFFFFFFFu;
constexpr std::uint32_t kMagic = 0xA93A73E4u;

constexpr std::size_t class_bytes(std::size_t idx) noexcept {
  return std::size_t{1} << (kMinClassShift + idx);
}

std::uintptr_t align_up(std::uintptr_t v, std::size_t align) noexcept {
  return (v + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
}

// Arena identities are handed out from a process-wide counter so a
// magazine can tell "the arena I cached blocks from" apart from "a new
// arena that happens to live at the same address".
std::atomic<std::uint64_t> g_arena_ids{1};

// Registry of live arenas by id, so a dying thread can flush its
// magazines back without dereferencing a possibly-dead arena pointer.
std::mutex g_arena_reg_mu;
std::vector<std::pair<std::uint64_t, Arena*>>& arena_registry() {
  static std::vector<std::pair<std::uint64_t, Arena*>>* reg =
      new std::vector<std::pair<std::uint64_t, Arena*>>();
  return *reg;
}

}  // namespace

/// Prefixed to every allocation at (result - sizeof(Header)), so a bare
/// pointer routes back to its owning arena, block start and size class.
struct Arena::Header {
  Arena* owner;             ///< nullptr never happens; heap blocks keep
                            ///< their arena for counter symmetry
  void* block;              ///< block start: freelist node / heap base /
                            ///< large-mapping key
  std::uint32_t size_class; ///< class index, kClassLarge or kClassHeap
  std::uint32_t magic;      ///< corruption / double-free tripwire
};

static_assert(sizeof(Arena::Header) <= 32,
              "header must fit the reserved 32-byte prefix");
static_assert(alignof(Arena::Header) <= 32, "header alignment");

namespace {
constexpr std::size_t kHeaderSize = 32;

Arena::Header* header_of(void* p) noexcept {
  return reinterpret_cast<Arena::Header*>(static_cast<std::byte*>(p) -
                                          sizeof(Arena::Header));
}

void write_header(void* result, Arena* owner, void* block,
                  std::uint32_t size_class) noexcept {
  Arena::Header* h = header_of(result);
  h->owner = owner;
  h->block = block;
  h->size_class = size_class;
  h->magic = kMagic;
}
}  // namespace

// ---- per-thread magazines ---------------------------------------------
//
// A magazine is a small per-(thread, arena, size-class) stack of free
// blocks sitting in front of the arena mutex: a free parks the block in
// the calling thread's magazine, the next same-class allocation on that
// thread pops it back without touching the lock. The lock used to be
// cold; the steal executor's deques and per-item scratch warm it, and
// the magazines keep the steady state mutex-free.
//
// Safety without cross-thread flushes: entries are validated against
// the arena's never-reused id (a dead arena's blocks died with its
// slabs — the pointers are simply dropped) and its rebind epoch (a
// moved arena gets its cached blocks flushed back to the shared
// freelists by the owning thread). Only the owning thread ever touches
// its magazines, so there is nothing to race with; on thread exit the
// blocks are returned through the live-arena registry.
struct ThreadMagazines {
  static constexpr std::size_t kSlots = 4;   ///< distinct arenas cached
  static constexpr std::size_t kDepth = 16;  ///< blocks per size class

  struct Slot {
    std::uint64_t arena_id = 0;  ///< 0 = empty slot
    Arena* arena = nullptr;
    std::uint64_t epoch = 0;
    std::uint8_t count[kNumClasses] = {};
    void* blocks[kNumClasses][kDepth];
  };

  Slot slots[kSlots];
  std::size_t next_evict = 0;

  ~ThreadMagazines() {
    for (Slot& s : slots) flush(s);
  }

  /// Return every cached block of `s` to its arena's shared freelists
  /// (via the registry: the arena may be gone) and empty the slot.
  void flush(Slot& s) {
    if (s.arena_id == 0) return;
    Arena* live = nullptr;
    {
      std::lock_guard<std::mutex> lock(g_arena_reg_mu);
      for (const auto& [id, a] : arena_registry()) {
        if (id == s.arena_id) {
          live = a;
          break;
        }
      }
    }
    if (live != nullptr) {
      for (std::size_t c = 0; c < kNumClasses; ++c) {
        if (s.count[c] > 0) {
          live->take_back_blocks(static_cast<std::uint32_t>(c), s.blocks[c],
                                 s.count[c]);
        }
      }
    }
    s.arena_id = 0;
    s.arena = nullptr;
    for (std::size_t c = 0; c < kNumClasses; ++c) s.count[c] = 0;
  }

  /// The slot caching `arena`, claiming (and flushing) one if absent.
  Slot& slot_for(Arena* arena, std::uint64_t id, std::uint64_t epoch) {
    for (Slot& s : slots) {
      if (s.arena != arena || s.arena_id == 0) continue;
      if (s.arena_id != id) {
        // Same address, different identity: the cached arena died and
        // its slabs were unmapped — the block pointers are dead weight.
        s.arena_id = 0;
        for (std::size_t c = 0; c < kNumClasses; ++c) s.count[c] = 0;
        break;
      }
      if (s.epoch != epoch) {
        // rebind() moved the arena: push the cached blocks back so
        // future carves come from freelists on the new node's slabs.
        flush(s);
        break;
      }
      return s;
    }
    for (Slot& s : slots) {
      if (s.arena_id == 0) {
        s.arena_id = id;
        s.arena = arena;
        s.epoch = epoch;
        return s;
      }
    }
    Slot& victim = slots[next_evict];
    next_evict = (next_evict + 1) % kSlots;
    flush(victim);
    victim.arena_id = id;
    victim.arena = arena;
    victim.epoch = epoch;
    return victim;
  }
};

namespace {
thread_local ThreadMagazines tl_magazines;
}  // namespace

Arena::Arena(int node, std::size_t slab_bytes)
    : slab_bytes_(std::max(slab_bytes, std::size_t{4096})),
      heap_(!enabled_from_env()),
      node_(node),
      id_(g_arena_ids.fetch_add(1, std::memory_order_relaxed)) {
  free_.assign(kNumClasses, nullptr);
  std::lock_guard<std::mutex> lock(g_arena_reg_mu);
  arena_registry().emplace_back(id_, this);
}

Arena::~Arena() {
  {
    std::lock_guard<std::mutex> lock(g_arena_reg_mu);
    auto& reg = arena_registry();
    for (std::size_t i = 0; i < reg.size(); ++i) {
      if (reg[i].first == id_) {
        reg[i] = reg.back();
        reg.pop_back();
        break;
      }
    }
  }
  // Every runtime component frees its blocks in its own destructor
  // before the Program's arenas go away (member declaration order);
  // a live allocation here is a lifetime bug upstream. Blocks still
  // cached in thread magazines were already counted as freed and die
  // with the slabs (the magazines drop them on the id mismatch).
  assert(allocs_.load(std::memory_order_relaxed) ==
         frees_.load(std::memory_order_relaxed));
  // MemBind destructors unmap the slabs and large mappings.
}

void Arena::take_back_blocks(std::uint32_t cls, void* const* blocks,
                             std::size_t n) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    void* block = blocks[i];
    *static_cast<void**>(block) = free_[cls];
    free_[cls] = block;
  }
}

bool Arena::enabled_from_env() {
  const std::optional<std::string> mode = support::env_string(kArenaEnvVar);
  if (!mode || mode->empty()) return true;  // unset => shard arenas
  if (support::iequals(*mode, "off") || *mode == "0" ||
      support::iequals(*mode, "false")) {
    return false;
  }
  if (support::iequals(*mode, "shard") || *mode == "1" ||
      support::iequals(*mode, "on") || support::iequals(*mode, "true")) {
    return true;
  }
  support::throw_bad_env(kArenaEnvVar, *mode, "shard or off");
}

Arena& Arena::runtime_default() {
  // Leaked on purpose: objects freed from static destructors (test
  // fixtures, globals holding queues) must find the arena alive.
  static Arena* instance = new Arena();
  return *instance;
}

std::size_t Arena::class_index(std::size_t need) noexcept {
  std::size_t idx = 0;
  while (class_bytes(idx) < need) ++idx;
  return idx;
}

void Arena::note_backing(const topo::MemBind& mb, std::size_t bytes,
                         int node) {
  bytes_reserved_.fetch_add(bytes, std::memory_order_relaxed);
  refills_.fetch_add(1, std::memory_order_relaxed);
  // A "node miss" is a bind the host could have honoured but did not:
  // a real host node was requested and the pages are tag-only emulated
  // or physically elsewhere. Fixture-only nodes (smp20e7 on a one-node
  // dev box) are not misses — there is nothing the allocator could have
  // done better on that hardware.
  if (node < 0 || !topo::MemBind::numa_syscalls_available()) return;
  const std::vector<int> host = topo::MemBind::host_node_ids();
  if (std::find(host.begin(), host.end(), node) == host.end()) return;
  if (mb.emulated() || mb.resident_node() != node) {
    node_misses_.fetch_add(1, std::memory_order_relaxed);
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
  // Worst-case prefix: header plus alignment slack past it.
  const std::size_t need = bytes + kHeaderSize + align;

  if (heap_) {
    void* raw = ::operator new(need);
    void* result = reinterpret_cast<void*>(
        align_up(reinterpret_cast<std::uintptr_t>(raw) + kHeaderSize, align));
    write_header(result, this, raw, kClassHeap);
    // Heap mode leaves bytes_reserved/refills at ~0: the counters then
    // read as "the node-bound path is off", which is the point of the
    // escape hatch.
    allocs_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  // Magazine fast path: same thread freed a same-class block recently.
  if (need <= class_bytes(kNumClasses - 1) && need <= slab_bytes_ / 2) {
    const std::size_t idx = class_index(need);
    ThreadMagazines::Slot& slot = tl_magazines.slot_for(
        this, id_, mag_epoch_.load(std::memory_order_acquire));
    if (slot.count[idx] > 0) {
      void* block = slot.blocks[idx][--slot.count[idx]];
      void* result = reinterpret_cast<void*>(align_up(
          reinterpret_cast<std::uintptr_t>(block) + kHeaderSize, align));
      write_header(result, this, block, static_cast<std::uint32_t>(idx));
      allocs_.fetch_add(1, std::memory_order_relaxed);
      magazine_hits_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  return allocate_locked(need, bytes, align);
}

void* Arena::allocate_locked(std::size_t need, std::size_t /*bytes*/,
                             std::size_t align) {
  const int node = node_.load(std::memory_order_relaxed);

  void* block = nullptr;
  std::uint32_t cls;
  if (need > class_bytes(kNumClasses - 1) || need > slab_bytes_ / 2) {
    // Oversize: dedicated node-bound mapping, returned to the OS on free.
    topo::MemBind mb = topo::MemBind::allocate(need, node);
    note_backing(mb, need, node);
    block = mb.data();
    large_.emplace_back(block, std::move(mb));
    cls = kClassLarge;
  } else {
    const std::size_t idx = class_index(need);
    cls = static_cast<std::uint32_t>(idx);
    if (free_[idx]) {
      block = free_[idx];
      free_[idx] = *static_cast<void**>(block);
    } else {
      const std::size_t bsz = class_bytes(idx);
      if (slabs_.empty() || bump_ + bsz > slabs_.back().size()) {
        topo::MemBind slab = topo::MemBind::allocate(slab_bytes_, node);
        note_backing(slab, slab_bytes_, node);
        slabs_.push_back(std::move(slab));
        bump_ = 0;
      }
      block = slabs_.back().data() + bump_;
      bump_ += bsz;
    }
  }

  void* result = reinterpret_cast<void*>(
      align_up(reinterpret_cast<std::uintptr_t>(block) + kHeaderSize, align));
  write_header(result, this, block, cls);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void Arena::deallocate(void* p) noexcept {
  if (!p) return;
  Header* h = header_of(p);
  assert(h->magic == kMagic && "Arena::deallocate: bad or double-freed ptr");
  h->magic = 0;  // arm the double-free tripwire
  h->owner->release(h);
}

void Arena::release(Header* h) noexcept {
  frees_.fetch_add(1, std::memory_order_relaxed);
  if (h->size_class == kClassHeap) {
    ::operator delete(h->block);
    return;
  }
  // Small blocks park in the freeing thread's magazine when there is
  // room; the next same-class alloc on that thread skips the mutex.
  if (h->size_class < kNumClasses && magazine_put(h)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (h->size_class == kClassLarge) {
    for (std::size_t i = 0; i < large_.size(); ++i) {
      if (large_[i].first == h->block) {
        bytes_reserved_.fetch_sub(large_[i].second.size(),
                                  std::memory_order_relaxed);
        large_[i] = std::move(large_.back());
        large_.pop_back();
        return;
      }
    }
    assert(false && "Arena::release: large block not found");
    return;
  }
  // Reuse the block's first word as the freelist link.
  void* block = h->block;
  *static_cast<void**>(block) = free_[h->size_class];
  free_[h->size_class] = block;
}

bool Arena::magazine_put(Header* h) noexcept {
  ThreadMagazines::Slot& slot = tl_magazines.slot_for(
      this, id_, mag_epoch_.load(std::memory_order_acquire));
  const std::uint32_t cls = h->size_class;
  if (slot.count[cls] >= ThreadMagazines::kDepth) return false;
  slot.blocks[cls][slot.count[cls]++] = h->block;
  return true;
}

void Arena::rebind(int node) {
  if (heap_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (node == node_.load(std::memory_order_relaxed)) return;
  node_.store(node, std::memory_order_release);
  rebinds_.fetch_add(1, std::memory_order_relaxed);
  // Invalidate every thread's magazines for this arena: the next
  // slot_for() sees the new epoch and flushes, so cached blocks return
  // to the shared freelists and reuse follows the new placement.
  mag_epoch_.fetch_add(1, std::memory_order_release);
  for (topo::MemBind& slab : slabs_) slab.migrate_to(node);
  for (auto& [ptr, mb] : large_) mb.migrate_to(node);
}

Arena::Stats Arena::stats() const noexcept {
  Stats s;
  s.bytes_reserved = bytes_reserved_.load(std::memory_order_relaxed);
  s.refills = refills_.load(std::memory_order_relaxed);
  s.node_misses = node_misses_.load(std::memory_order_relaxed);
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.rebinds = rebinds_.load(std::memory_order_relaxed);
  s.magazine_hits = magazine_hits_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t Arena::live_allocs() const noexcept {
  return allocs_.load(std::memory_order_relaxed) -
         frees_.load(std::memory_order_relaxed);
}

}  // namespace orwl::rt
