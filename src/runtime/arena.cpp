#include "runtime/arena.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "support/env.hpp"

namespace orwl::rt {

namespace {

// Size classes cover [64 B, 64 KiB] in powers of two; anything bigger
// (or bigger than half a slab, for small test arenas) gets a dedicated
// MemBind mapping. Class sizes include the per-allocation header.
constexpr std::size_t kMinClassShift = 6;                    // 64 B
constexpr std::size_t kMaxClassShift = 16;                   // 64 KiB
constexpr std::size_t kNumClasses =
    kMaxClassShift - kMinClassShift + 1;
constexpr std::uint32_t kClassLarge = 0xFFFFFFFEu;
constexpr std::uint32_t kClassHeap = 0xFFFFFFFFu;
constexpr std::uint32_t kMagic = 0xA93A73E4u;

constexpr std::size_t class_bytes(std::size_t idx) noexcept {
  return std::size_t{1} << (kMinClassShift + idx);
}

std::uintptr_t align_up(std::uintptr_t v, std::size_t align) noexcept {
  return (v + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
}

}  // namespace

/// Prefixed to every allocation at (result - sizeof(Header)), so a bare
/// pointer routes back to its owning arena, block start and size class.
struct Arena::Header {
  Arena* owner;             ///< nullptr never happens; heap blocks keep
                            ///< their arena for counter symmetry
  void* block;              ///< block start: freelist node / heap base /
                            ///< large-mapping key
  std::uint32_t size_class; ///< class index, kClassLarge or kClassHeap
  std::uint32_t magic;      ///< corruption / double-free tripwire
};

static_assert(sizeof(Arena::Header) <= 32,
              "header must fit the reserved 32-byte prefix");
static_assert(alignof(Arena::Header) <= 32, "header alignment");

namespace {
constexpr std::size_t kHeaderSize = 32;

Arena::Header* header_of(void* p) noexcept {
  return reinterpret_cast<Arena::Header*>(static_cast<std::byte*>(p) -
                                          sizeof(Arena::Header));
}

void write_header(void* result, Arena* owner, void* block,
                  std::uint32_t size_class) noexcept {
  Arena::Header* h = header_of(result);
  h->owner = owner;
  h->block = block;
  h->size_class = size_class;
  h->magic = kMagic;
}
}  // namespace

Arena::Arena(int node, std::size_t slab_bytes)
    : slab_bytes_(std::max(slab_bytes, std::size_t{4096})),
      heap_(!enabled_from_env()),
      node_(node) {
  free_.assign(kNumClasses, nullptr);
}

Arena::~Arena() {
  // Every runtime component frees its blocks in its own destructor
  // before the Program's arenas go away (member declaration order);
  // a live allocation here is a lifetime bug upstream.
  assert(allocs_.load(std::memory_order_relaxed) ==
         frees_.load(std::memory_order_relaxed));
  // MemBind destructors unmap the slabs and large mappings.
}

bool Arena::enabled_from_env() {
  const std::optional<std::string> mode = support::env_string(kArenaEnvVar);
  if (!mode) return true;  // unset => shard (node-bound) arenas
  return !(support::iequals(*mode, "off") || *mode == "0" ||
           support::iequals(*mode, "false"));
}

Arena& Arena::runtime_default() {
  // Leaked on purpose: objects freed from static destructors (test
  // fixtures, globals holding queues) must find the arena alive.
  static Arena* instance = new Arena();
  return *instance;
}

std::size_t Arena::class_index(std::size_t need) noexcept {
  std::size_t idx = 0;
  while (class_bytes(idx) < need) ++idx;
  return idx;
}

void Arena::note_backing(const topo::MemBind& mb, std::size_t bytes,
                         int node) {
  bytes_reserved_.fetch_add(bytes, std::memory_order_relaxed);
  refills_.fetch_add(1, std::memory_order_relaxed);
  // A "node miss" is a bind the host could have honoured but did not:
  // a real host node was requested and the pages are tag-only emulated
  // or physically elsewhere. Fixture-only nodes (smp20e7 on a one-node
  // dev box) are not misses — there is nothing the allocator could have
  // done better on that hardware.
  if (node < 0 || !topo::MemBind::numa_syscalls_available()) return;
  const std::vector<int> host = topo::MemBind::host_node_ids();
  if (std::find(host.begin(), host.end(), node) == host.end()) return;
  if (mb.emulated() || mb.resident_node() != node) {
    node_misses_.fetch_add(1, std::memory_order_relaxed);
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
  // Worst-case prefix: header plus alignment slack past it.
  const std::size_t need = bytes + kHeaderSize + align;

  if (heap_) {
    void* raw = ::operator new(need);
    void* result = reinterpret_cast<void*>(
        align_up(reinterpret_cast<std::uintptr_t>(raw) + kHeaderSize, align));
    write_header(result, this, raw, kClassHeap);
    // Heap mode leaves bytes_reserved/refills at ~0: the counters then
    // read as "the node-bound path is off", which is the point of the
    // escape hatch.
    allocs_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  std::lock_guard<std::mutex> lock(mu_);
  return allocate_locked(need, bytes, align);
}

void* Arena::allocate_locked(std::size_t need, std::size_t /*bytes*/,
                             std::size_t align) {
  const int node = node_.load(std::memory_order_relaxed);

  void* block = nullptr;
  std::uint32_t cls;
  if (need > class_bytes(kNumClasses - 1) || need > slab_bytes_ / 2) {
    // Oversize: dedicated node-bound mapping, returned to the OS on free.
    topo::MemBind mb = topo::MemBind::allocate(need, node);
    note_backing(mb, need, node);
    block = mb.data();
    large_.emplace_back(block, std::move(mb));
    cls = kClassLarge;
  } else {
    const std::size_t idx = class_index(need);
    cls = static_cast<std::uint32_t>(idx);
    if (free_[idx]) {
      block = free_[idx];
      free_[idx] = *static_cast<void**>(block);
    } else {
      const std::size_t bsz = class_bytes(idx);
      if (slabs_.empty() || bump_ + bsz > slabs_.back().size()) {
        topo::MemBind slab = topo::MemBind::allocate(slab_bytes_, node);
        note_backing(slab, slab_bytes_, node);
        slabs_.push_back(std::move(slab));
        bump_ = 0;
      }
      block = slabs_.back().data() + bump_;
      bump_ += bsz;
    }
  }

  void* result = reinterpret_cast<void*>(
      align_up(reinterpret_cast<std::uintptr_t>(block) + kHeaderSize, align));
  write_header(result, this, block, cls);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void Arena::deallocate(void* p) noexcept {
  if (!p) return;
  Header* h = header_of(p);
  assert(h->magic == kMagic && "Arena::deallocate: bad or double-freed ptr");
  h->magic = 0;  // arm the double-free tripwire
  h->owner->release(h);
}

void Arena::release(Header* h) noexcept {
  frees_.fetch_add(1, std::memory_order_relaxed);
  if (h->size_class == kClassHeap) {
    ::operator delete(h->block);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (h->size_class == kClassLarge) {
    for (std::size_t i = 0; i < large_.size(); ++i) {
      if (large_[i].first == h->block) {
        bytes_reserved_.fetch_sub(large_[i].second.size(),
                                  std::memory_order_relaxed);
        large_[i] = std::move(large_.back());
        large_.pop_back();
        return;
      }
    }
    assert(false && "Arena::release: large block not found");
    return;
  }
  // Reuse the block's first word as the freelist link.
  void* block = h->block;
  *static_cast<void**>(block) = free_[h->size_class];
  free_[h->size_class] = block;
}

void Arena::rebind(int node) {
  if (heap_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (node == node_.load(std::memory_order_relaxed)) return;
  node_.store(node, std::memory_order_release);
  rebinds_.fetch_add(1, std::memory_order_relaxed);
  for (topo::MemBind& slab : slabs_) slab.migrate_to(node);
  for (auto& [ptr, mb] : large_) mb.migrate_to(node);
}

Arena::Stats Arena::stats() const noexcept {
  Stats s;
  s.bytes_reserved = bytes_reserved_.load(std::memory_order_relaxed);
  s.refills = refills_.load(std::memory_order_relaxed);
  s.node_misses = node_misses_.load(std::memory_order_relaxed);
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.rebinds = rebinds_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t Arena::live_allocs() const noexcept {
  return allocs_.load(std::memory_order_relaxed) -
         frees_.load(std::memory_order_relaxed);
}

}  // namespace orwl::rt
