#include "runtime/comm_meter.hpp"

#include <algorithm>
#include <new>

namespace orwl::rt {

namespace {

constexpr std::size_t kCellsPerLine = 64 / sizeof(std::atomic<std::uint64_t>);

std::size_t padded_stride(std::size_t cells) {
  return (cells + kCellsPerLine - 1) / kCellsPerLine * kCellsPerLine;
}

}  // namespace

CommMeter::CommMeter(std::size_t num_shards, std::size_t num_tasks,
                     const std::vector<Arena*>& arenas)
    : tasks_(num_tasks),
      shards_(std::max<std::size_t>(1, num_shards)),
      stride_(padded_stride(num_tasks * num_tasks)),
      counters_(new ShardCounters[shards_]) {
  banks_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    Arena* arena = s < arenas.size() && arenas[s] ? arenas[s]
                                                  : &Arena::runtime_default();
    void* mem = arena->allocate(stride_ * sizeof(std::atomic<std::uint64_t>),
                                /*align=*/64);
    auto* bank = static_cast<std::atomic<std::uint64_t>*>(mem);
    for (std::size_t i = 0; i < stride_; ++i) {
      new (&bank[i]) std::atomic<std::uint64_t>(0);
    }
    banks_.push_back(bank);
  }
}

CommMeter::~CommMeter() {
  for (auto* bank : banks_) Arena::deallocate(bank);
}

void CommMeter::record(std::size_t shard, TaskId from, TaskId to,
                       std::uint64_t bytes, bool remote) noexcept {
  if (from >= tasks_ || to >= tasks_ || from == to) return;
  if (shard >= shards_) shard = 0;
  cell(shard, from, to)
      .fetch_add(std::max<std::uint64_t>(1, bytes),
                 std::memory_order_relaxed);
  counters_[shard].handoffs.fetch_add(1, std::memory_order_relaxed);
  if (remote) {
    counters_[shard].remote.fetch_add(1, std::memory_order_relaxed);
  }
}

double CommMeter::harvest(tm::CommMatrix& m, double decay) {
  tm::CommMatrix delta(tasks_);
  double total = 0.0;
  for (std::size_t i = 0; i < tasks_; ++i) {
    for (std::size_t j = i + 1; j < tasks_; ++j) {
      std::uint64_t v = 0;
      for (std::size_t s = 0; s < shards_; ++s) {
        v += cell(s, i, j).exchange(0, std::memory_order_relaxed);
        v += cell(s, j, i).exchange(0, std::memory_order_relaxed);
      }
      if (v != 0) {
        delta.set(i, j, static_cast<double>(v));
        total += static_cast<double>(v);
      }
    }
  }
  m.decay_accumulate(delta, decay);
  return total;
}

std::uint64_t CommMeter::handoffs() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < shards_; ++s) {
    n += counters_[s].handoffs.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t CommMeter::remote_handoffs() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < shards_; ++s) {
    n += counters_[s].remote.load(std::memory_order_relaxed);
  }
  return n;
}

}  // namespace orwl::rt
