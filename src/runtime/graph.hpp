// The task-location access graph.
//
// This is the structural information the affinity module extracts: which
// task accesses which location in which mode, and how large each location
// is. "The ORWL programming model exposes all the required pieces of
// information: the tasks, the amount of data they share or exchange (i.e
// the location) and their connectivity (i.e. the location they share)."
// (Sec. IV-A)
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/types.hpp"

namespace orwl::rt {

struct Access {
  TaskId task;
  AccessMode mode;
  std::uint64_t priority;
};

struct LocationInfo {
  LocationId id;
  TaskId owner;
  std::size_t bytes;
  std::vector<Access> accesses;
};

struct TaskGraph {
  std::size_t num_tasks = 0;
  std::size_t locations_per_task = 0;
  std::vector<LocationInfo> locations;

  /// Number of distinct (task, location) access edges.
  std::size_t num_access_edges() const {
    std::size_t n = 0;
    for (const auto& l : locations) n += l.accesses.size();
    return n;
  }
};

}  // namespace orwl::rt
