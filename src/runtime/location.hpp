// ORWL locations: the shared resources of the programming model.
//
// "orwl_location is the primitive to represent a shared resource between
// the tasks. It could be data (identical contents at varying memory
// addresses), memory (a specific address), a computational unit (CPU or
// accelerator) or an I/O device." (Sec. III)
//
// A location owns a NUMA-aware byte buffer (sized by scale()) and the
// FIFO request queue that serializes access to it. The buffer is a
// topo::NumaBuffer: once the affinity module has placed the owner task,
// the runtime binds the buffer to the owner's NUMA node, and — under the
// ORWL_DATA_TRANSFER policy — the control thread serving the location's
// shard migrates the pages at grant time when recent writers live
// elsewhere ("control threads ... manage lock synchronization and data
// transfer", Sec. IV-A).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/request_queue.hpp"
#include "runtime/types.hpp"
#include "topo/membind.hpp"

namespace orwl::rt {

/// Grant-time data-transfer policy of the runtime
/// (ORWL_DATA_TRANSFER / ProgramOptions::data_transfer).
enum class DataTransferPolicy : std::uint8_t {
  Off,    ///< first-touch only: never bind or migrate location buffers
  Owner,  ///< bind each buffer to its owner task's placed NUMA node
  Adaptive,  ///< Owner, plus grant-time migration toward recent writers
};

/// Human-readable policy name ("off", "owner", "adaptive").
const char* to_string(DataTransferPolicy p) noexcept;

/// Environment override for the data-transfer policy; accepted values are
/// "off", "owner" and "adaptive" (default: owner).
inline constexpr const char* kDataTransferEnvVar = "ORWL_DATA_TRANSFER";

class Location : private GrantHook {
 public:
  /// \param id    Global location id (owner * locations_per_task + slot).
  /// \param owner Task owning (and scaling) this location.
  /// \param slot  Index of this location among its owner's locations.
  Location(LocationId id, TaskId owner, std::size_t slot)
      : id_(id), owner_(owner), slot_(slot) {}
  Location(const Location&) = delete;
  Location& operator=(const Location&) = delete;

  LocationId id() const noexcept { return id_; }
  TaskId owner() const noexcept { return owner_; }
  /// Index of this location among its owner's locations.
  std::size_t slot() const noexcept { return slot_; }

  /// "Scale our own location(s) to the appropriate size" (Listing 1).
  /// (Re)allocates the backing buffer on the location's bound NUMA node;
  /// contents are zero-initialized.
  /// \param bytes New size of the buffer.
  void scale(std::size_t bytes) {
    buf_.resize(bytes);
    size_ = bytes;
  }

  /// Record the size without allocating the buffer. Used by dry-run graph
  /// extraction (the communication matrix needs only the size, and paper-
  /// scale problems would otherwise allocate gigabytes). Accessing data()
  /// after a hint-only scale yields nullptr.
  /// \param bytes Size to record for the communication matrix.
  void scale_hint(std::size_t bytes) {
    buf_.reset();
    size_ = bytes;
  }

  /// Size recorded by the last scale()/scale_hint().
  std::size_t size() const noexcept { return size_; }
  /// Buffer start; nullptr after scale_hint() or before any scale().
  std::byte* data() noexcept { return buf_.data(); }
  const std::byte* data() const noexcept { return buf_.data(); }

  /// Typed view of the buffer. The caller is responsible for holding the
  /// lock (through a granted handle) during concurrent phases.
  template <typename T>
  T* as() noexcept {
    return reinterpret_cast<T*>(buf_.data());
  }
  template <typename T>
  const T* as() const noexcept {
    return reinterpret_cast<const T*>(buf_.data());
  }

  RequestQueue& queue() noexcept { return queue_; }
  const RequestQueue& queue() const noexcept { return queue_; }

  // ---- NUMA-local location memory (Sec. IV-A data transfer) --------------

  /// The NUMA-aware backing store (benches and tests inspect residency
  /// through it; application code should stick to data()/as()).
  topo::NumaBuffer& buffer() noexcept { return buf_; }
  const topo::NumaBuffer& buffer() const noexcept { return buf_; }

  /// Set the transfer policy. Not thread-safe; the Program configures it
  /// before the location is used concurrently.
  void set_data_transfer(DataTransferPolicy p) noexcept { policy_ = p; }
  DataTransferPolicy data_transfer() const noexcept { return policy_; }

  /// The hook the Program installs on this location's queue (grant-time
  /// data transfer runs through it).
  GrantHook* grant_hook() noexcept { return this; }

  /// Declare `node` the home of this location (its owner task's placed
  /// NUMA node) and migrate the buffer there. Called by the runtime at
  /// placement time, on dynamic re-placement, and for live inserts.
  /// Thread-safe. No-op under DataTransferPolicy::Off or for node < 0.
  /// Under Adaptive, a re-bind to an *unchanged* home leaves a buffer
  /// the writers already pulled elsewhere in place, and a re-bind to a
  /// new home resets the (now stale) writer history.
  /// \param node Topology NUMA-node index; -1 = unknown/unplaced.
  void bind_home(int node);

  /// Home node currently declared via bind_home(); -1 when unplaced.
  int home_node() const noexcept {
    return home_node_.load(std::memory_order_acquire);
  }

  /// Node the buffer is currently bound to; -1 when unbound.
  int memory_node() const noexcept { return buf_.node(); }

  /// Record the NUMA node a granted writer ran on (called by Handle at
  /// write release; writers are exclusive, so calls are serialized by the
  /// lock protocol itself). Feeds the adaptive policy. -1 entries
  /// (unplaced writers) are kept but never chosen as a target.
  /// \param node Topology NUMA-node index of the releasing writer.
  void note_writer_node(int node) noexcept {
    prev_writer_node_.store(
        last_writer_node_.exchange(node, std::memory_order_acq_rel),
        std::memory_order_release);
  }

  /// Grant-time migrations performed for this location (owner fix-ups and
  /// adaptive follow-the-writer moves; the initial bind_home is counted
  /// separately by the buffer's own migration counter).
  std::uint64_t data_transfers() const noexcept {
    return transfers_.load(std::memory_order_relaxed);
  }

 private:
  /// GrantHook: runs on the control thread serving this location's shard
  /// (or on the posting thread for inline grants) before the next grant.
  void before_grant() noexcept override;

  LocationId id_;
  TaskId owner_;
  std::size_t slot_;
  std::size_t size_ = 0;
  topo::NumaBuffer buf_;
  RequestQueue queue_;

  DataTransferPolicy policy_ = DataTransferPolicy::Off;
  std::atomic<int> home_node_{-1};
  std::atomic<int> last_writer_node_{-1};
  std::atomic<int> prev_writer_node_{-1};
  std::atomic<std::uint64_t> transfers_{0};
};

}  // namespace orwl::rt
