// ORWL locations: the shared resources of the programming model.
//
// "orwl_location is the primitive to represent a shared resource between
// the tasks. It could be data (identical contents at varying memory
// addresses), memory (a specific address), a computational unit (CPU or
// accelerator) or an I/O device." (Sec. III)
//
// A location owns a byte buffer (sized by scale()) and the FIFO request
// queue that serializes access to it.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/request_queue.hpp"
#include "runtime/types.hpp"

namespace orwl::rt {

class Location {
 public:
  Location(LocationId id, TaskId owner, std::size_t slot)
      : id_(id), owner_(owner), slot_(slot) {}
  Location(const Location&) = delete;
  Location& operator=(const Location&) = delete;

  LocationId id() const noexcept { return id_; }
  TaskId owner() const noexcept { return owner_; }
  /// Index of this location among its owner's locations.
  std::size_t slot() const noexcept { return slot_; }

  /// "Scale our own location(s) to the appropriate size" (Listing 1).
  /// (Re)allocates the backing buffer; contents are zero-initialized.
  void scale(std::size_t bytes) {
    buf_.assign(bytes, std::byte{0});
    size_ = bytes;
  }

  /// Record the size without allocating the buffer. Used by dry-run graph
  /// extraction (the communication matrix needs only the size, and paper-
  /// scale problems would otherwise allocate gigabytes). Accessing data()
  /// after a hint-only scale yields nullptr.
  void scale_hint(std::size_t bytes) {
    buf_.clear();
    buf_.shrink_to_fit();
    size_ = bytes;
  }

  std::size_t size() const noexcept { return size_; }
  std::byte* data() noexcept { return buf_.data(); }
  const std::byte* data() const noexcept { return buf_.data(); }

  /// Typed view of the buffer. The caller is responsible for holding the
  /// lock (through a granted handle) during concurrent phases.
  template <typename T>
  T* as() noexcept {
    return reinterpret_cast<T*>(buf_.data());
  }
  template <typename T>
  const T* as() const noexcept {
    return reinterpret_cast<const T*>(buf_.data());
  }

  RequestQueue& queue() noexcept { return queue_; }
  const RequestQueue& queue() const noexcept { return queue_; }

 private:
  LocationId id_;
  TaskId owner_;
  std::size_t slot_;
  std::size_t size_ = 0;
  std::vector<std::byte> buf_;
  RequestQueue queue_;
};

}  // namespace orwl::rt
