// ORWL locations: the shared resources of the programming model.
//
// "orwl_location is the primitive to represent a shared resource between
// the tasks. It could be data (identical contents at varying memory
// addresses), memory (a specific address), a computational unit (CPU or
// accelerator) or an I/O device." (Sec. III)
//
// A location owns a NUMA-aware byte buffer (sized by scale()) and the
// FIFO request queue that serializes access to it. The buffer is a
// topo::NumaBuffer: once the affinity module has placed the owner task,
// the runtime binds the buffer to the owner's NUMA node, and — under the
// ORWL_DATA_TRANSFER policy — the control thread serving the location's
// shard migrates the pages at grant time when recent writers live
// elsewhere ("control threads ... manage lock synchronization and data
// transfer", Sec. IV-A).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/request_queue.hpp"
#include "runtime/types.hpp"
#include "topo/membind.hpp"

namespace orwl::rt {

/// Grant-time data-transfer policy of the runtime
/// (ORWL_DATA_TRANSFER / ProgramOptions::data_transfer).
enum class DataTransferPolicy : std::uint8_t {
  Off,    ///< first-touch only: never bind or migrate location buffers
  Owner,  ///< bind each buffer to its owner task's placed NUMA node
  Adaptive,  ///< Owner, plus grant-time migration toward recent writers
};

/// Human-readable policy name ("off", "owner", "adaptive").
const char* to_string(DataTransferPolicy p) noexcept;

/// Environment override for the data-transfer policy; accepted values are
/// "off", "owner" and "adaptive" (default: owner).
inline constexpr const char* kDataTransferEnvVar = "ORWL_DATA_TRANSFER";

/// Environment override for the adaptive policy's migration hysteresis:
/// the buffer follows the writers only after K consecutive granted
/// writers on the same non-buffer node (default 2). Higher values resist
/// ping-ponging workloads; 1 chases every writer.
inline constexpr const char* kDataTransferHysteresisEnvVar =
    "ORWL_DATA_TRANSFER_HYSTERESIS";

class Location : private GrantHook {
 public:
  /// \param id    Global location id (owner * locations_per_task + slot).
  /// \param owner Task owning (and scaling) this location.
  /// \param slot  Index of this location among its owner's locations.
  /// \param arena Arena backing the request queue's windows and slots
  ///              (the owner's control-shard arena; null = process arena).
  Location(LocationId id, TaskId owner, std::size_t slot,
           rt::Arena* arena = nullptr)
      : id_(id), owner_(owner), slot_(slot), queue_(arena) {}
  Location(const Location&) = delete;
  Location& operator=(const Location&) = delete;

  // ---- the request surface Handles drive ---------------------------------
  // Virtual so a location can live in another process or on another host:
  // dist::RemoteLocation overrides these four to run the same ticket
  // life-cycle over a transport (REQ -> GRANT -> RELEASE frames) while
  // Handle, the guards and the v2 facade stay byte-for-byte unchanged.
  // The defaults drive the in-process FIFO queue.

  /// Append a request for this location; returns its ticket.
  virtual Ticket enqueue_request(AccessMode mode) {
    return queue_.enqueue(mode);
  }

  /// Block until the ticket is granted (and, for a remote location, the
  /// buffer payload has landed in the local mirror buffer).
  virtual void acquire_request(Ticket t) { queue_.acquire(t); }

  /// Release a granted request (for a remote write, ships the buffer
  /// back to the home process first).
  virtual void release_request(Ticket t) { queue_.release(t); }

  /// Atomically re-insert a request of the same mode and release the
  /// given one (the iterative-handle cycle). Returns the new ticket.
  virtual Ticket reinsert_release_request(Ticket t, AccessMode mode) {
    return queue_.reinsert_and_release(t, mode);
  }

  /// True for locations whose home is another process (dist layer).
  virtual bool is_remote() const noexcept { return false; }

  LocationId id() const noexcept { return id_; }
  TaskId owner() const noexcept { return owner_; }
  /// Index of this location among its owner's locations.
  std::size_t slot() const noexcept { return slot_; }

  /// "Scale our own location(s) to the appropriate size" (Listing 1).
  /// (Re)allocates the backing buffer on the location's bound NUMA node;
  /// contents are zero-initialized. With ORWL_HUGEPAGES=1 a buffer of at
  /// least one huge page is backed by MAP_HUGETLB storage when the host
  /// provides it (transparent fallback to normal pages otherwise).
  /// \param bytes New size of the buffer.
  void scale(std::size_t bytes);

  /// Record the size without allocating the buffer. Used by dry-run graph
  /// extraction (the communication matrix needs only the size, and paper-
  /// scale problems would otherwise allocate gigabytes). Accessing data()
  /// after a hint-only scale yields nullptr.
  /// \param bytes Size to record for the communication matrix.
  void scale_hint(std::size_t bytes) {
    buf_.reset();
    size_ = bytes;
  }

  /// Size recorded by the last scale()/scale_hint().
  std::size_t size() const noexcept { return size_; }
  /// Buffer start; nullptr after scale_hint() or before any scale().
  std::byte* data() noexcept { return buf_.data(); }
  const std::byte* data() const noexcept { return buf_.data(); }

  /// Typed view of the buffer. The caller is responsible for holding the
  /// lock (through a granted handle) during concurrent phases.
  template <typename T>
  T* as() noexcept {
    return reinterpret_cast<T*>(buf_.data());
  }
  template <typename T>
  const T* as() const noexcept {
    return reinterpret_cast<const T*>(buf_.data());
  }

  RequestQueue& queue() noexcept { return queue_; }
  const RequestQueue& queue() const noexcept { return queue_; }

  // ---- NUMA-local location memory (Sec. IV-A data transfer) --------------

  /// The NUMA-aware backing store (benches and tests inspect residency
  /// through it; application code should stick to data()/as()).
  topo::NumaBuffer& buffer() noexcept { return buf_; }
  const topo::NumaBuffer& buffer() const noexcept { return buf_; }

  /// Set the transfer policy. Not thread-safe; the Program configures it
  /// before the location is used concurrently.
  void set_data_transfer(DataTransferPolicy p) noexcept { policy_ = p; }
  DataTransferPolicy data_transfer() const noexcept { return policy_; }

  /// The hook the Program installs on this location's queue (grant-time
  /// data transfer runs through it).
  GrantHook* grant_hook() noexcept { return this; }

  /// Declare `node` the home of this location (its owner task's placed
  /// NUMA node) and migrate the buffer there. Called by the runtime at
  /// placement time, on dynamic re-placement, and for live inserts.
  /// Thread-safe. No-op under DataTransferPolicy::Off or for node < 0.
  /// Under Adaptive, a re-bind to an *unchanged* home leaves a buffer
  /// the writers already pulled elsewhere in place, and a re-bind to a
  /// new home resets the (now stale) writer history.
  /// \param node Topology NUMA-node index; -1 = unknown/unplaced.
  void bind_home(int node);

  /// Home node currently declared via bind_home(); -1 when unplaced.
  int home_node() const noexcept {
    return home_node_.load(std::memory_order_acquire);
  }

  /// Node the buffer is currently bound to; -1 when unbound.
  int memory_node() const noexcept { return buf_.node(); }

  /// Record the NUMA node a granted writer ran on (called by Handle at
  /// write release; writers are exclusive, so calls are serialized by the
  /// lock protocol itself). Feeds the adaptive policy's decaying streak
  /// counter: a writer on the streak node lengthens it (saturating at
  /// twice the hysteresis threshold), a writer elsewhere halves it, and
  /// the streak switches node only once the count has decayed to 1 — so
  /// a ping-ponging writer set never builds up enough evidence to
  /// migrate. Unplaced writers (node < 0) are ignored.
  /// \param node Topology NUMA-node index of the releasing writer.
  void note_writer_node(int node) noexcept;

  /// Record the task that just released this location's lock (any access
  /// mode). The next acquirer reads it to attribute the hand-off in the
  /// measured communication matrix. Relaxed would suffice for the data —
  /// the queue's grant publication orders the store before the matching
  /// load — release/acquire keeps the pairing self-evident.
  void note_releaser(TaskId task) noexcept {
    last_releaser_.store(static_cast<std::int64_t>(task),
                         std::memory_order_release);
  }

  /// Task of the most recent release, or -1 before the first one.
  std::int64_t last_releaser() const noexcept {
    return last_releaser_.load(std::memory_order_acquire);
  }

  /// Consecutive-writer threshold of the adaptive policy (K in the
  /// ORWL_DATA_TRANSFER_HYSTERESIS contract). Not thread-safe; the
  /// Program configures it before concurrent use. 0 is clamped to 1.
  void set_transfer_hysteresis(std::uint32_t k) noexcept {
    hysteresis_ = k == 0 ? 1 : k;
  }
  std::uint32_t transfer_hysteresis() const noexcept { return hysteresis_; }

  /// Grant-time migrations performed for this location (owner fix-ups and
  /// adaptive follow-the-writer moves; the initial bind_home is counted
  /// separately by the buffer's own migration counter).
  std::uint64_t data_transfers() const noexcept {
    return transfers_.load(std::memory_order_relaxed);
  }

 private:
  /// GrantHook: runs on the control thread serving this location's shard
  /// (or on the posting thread for inline grants) before the next grant.
  void before_grant() noexcept override;

  LocationId id_;
  TaskId owner_;
  std::size_t slot_;
  std::size_t size_ = 0;
  topo::NumaBuffer buf_;
  RequestQueue queue_;

  /// One atomic word for the adaptive writer streak, so the control
  /// thread reads node and count coherently: node in the high 32 bits
  /// (as int32), streak length in the low 32.
  static constexpr std::uint64_t pack_streak(int node,
                                             std::uint32_t count) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
            << 32) |
           count;
  }
  static constexpr int streak_node(std::uint64_t s) noexcept {
    return static_cast<int>(static_cast<std::uint32_t>(s >> 32));
  }
  static constexpr std::uint32_t streak_count(std::uint64_t s) noexcept {
    return static_cast<std::uint32_t>(s);
  }

  DataTransferPolicy policy_ = DataTransferPolicy::Off;
  std::uint32_t hysteresis_ = 2;
  std::atomic<int> home_node_{-1};
  std::atomic<std::uint64_t> writer_streak_{pack_streak(-1, 0)};
  std::atomic<std::uint64_t> transfers_{0};
  std::atomic<std::int64_t> last_releaser_{-1};
};

}  // namespace orwl::rt
