// Fig. 6: "FPS (logarithmic scale) of HD video tracking".
//
// The 30-task video application at HD / Full HD / 4K on 4 sockets (30
// cores) of each machine; series Sequential / OpenMP / OpenMP (Affinity)
// / ORWL / ORWL (Affinity). Shapes to compare: ORWL+affinity accelerates
// the native ORWL run by ~4.5x on the hyperthreaded SMP12E5 and ~2.5x on
// SMP20E7, while OpenMP binding only reaches ~2x / ~1.5x.
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"

namespace {

constexpr std::size_t kFrames = 128;

struct Resolution {
  const char* name;
  orwl::apps::VideoParams params;
};

void run_machine(const orwl::sim::MachineModel& full) {
  using namespace orwl;
  // "we use only 4 sockets (30 cores) of the architectures"
  const sim::MachineModel m = restricted(full, 4);
  std::printf("-- %s (4 sockets) --\n", full.name.c_str());

  std::vector<Resolution> resolutions{
      {"HD", apps::video_hd()},
      {"Full HD", apps::video_full_hd()},
      {"4K", apps::video_4k()},
  };
  support::TextTable t;
  t.header({"Resolution", "Sequential", "OpenMP", "OpenMP (Affinity)",
            "ORWL", "ORWL (Affinity)"});
  for (auto& r : resolutions) {
    r.params.frames = kFrames;
    const sim::Workload seq = apps::video_sequential_workload(r.params);
    const sim::Workload omp = apps::video_forkjoin_workload(r.params);
    const sim::Workload orwl_w = apps::video_orwl_workload(r.params);

    auto fps = [&](const sim::SimResult& res) {
      return support::format_double(kFrames / res.seconds, 1);
    };
    t.row({r.name,
           fps(simulate(m, seq, sim::BindSpec::os_scheduled())),
           fps(simulate(m, omp, sim::BindSpec::os_scheduled())),
           fps(bench::best_omp_affinity(m, omp)),
           fps(simulate(m, orwl_w, sim::BindSpec::os_scheduled())),
           fps(simulate(m, orwl_w, bench::treematch_bind(m, orwl_w)))});
  }
  std::printf("%s   (frames per second, higher is better)\n\n",
              t.render().c_str());
}

}  // namespace

int main() {
  using orwl::sim::MachineModel;
  std::puts("== Fig. 6: video tracking frames per second ==");
  std::printf("   30 tasks on 30 cores, %zu frames per run\n\n", kFrames);
  run_machine(MachineModel::smp12e5());
  run_machine(MachineModel::smp20e7());
  return 0;
}
