// Table II: "Accumulated hardware/software counters for Livermore Kernel
// 23 on SMP12E5 (64 cores)".
//
// Paper values for reference:
//                      ORWL   ORWL(Aff)  OpenMP  OpenMP(Aff)
//   L3 misses (G)      81     14.2       81      64
//   stalled cyc (G)    840    200        840     720
//   context switches   99778  89151      745     210
//   CPU migrations     15960  0          203     0
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"

int main() {
  using namespace orwl;
  std::puts("== Table II: LK23 hardware/software counters, SMP12E5, 64 "
            "cores ==\n");

  const sim::MachineModel m = sim::MachineModel::smp12e5();
  const sim::Workload orwl_w = apps::lk23_orwl_workload(16384, 100, 64);
  const sim::Workload omp_w =
      apps::lk23_forkjoin_workload(16384, 100, 64);

  support::TextTable t;
  t.header({"", "Billions of L3 misses", "Billions of stalled cycles",
            "context switches", "CPU migrations"});
  t.row(bench::counter_row(
      "ORWL", simulate(m, orwl_w, sim::BindSpec::os_scheduled())));
  t.row(bench::counter_row(
      "ORWL (Affinity)",
      simulate(m, orwl_w, bench::treematch_bind(m, orwl_w))));
  t.row(bench::counter_row(
      "OpenMP", simulate(m, omp_w, sim::BindSpec::os_scheduled())));
  t.row(bench::counter_row("OpenMP (Affinity)",
                           bench::best_omp_affinity(m, omp_w)));
  std::printf("%s\n", t.render().c_str());
  std::puts("paper shape check: affinity cuts ORWL misses by several x; "
            "OpenMP binding helps misses only modestly; ORWL context\n"
            "switches are orders of magnitude above OpenMP's; migrations "
            "drop to 0 for every bound configuration.");
  return 0;
}
