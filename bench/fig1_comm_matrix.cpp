// Fig. 1: "Communication matrix of the video tracking application -
// logarithmic gray scale".
//
// The matrix is extracted from the real ORWL task graph of the video
// application (30 tasks) through the same dependency_get() path a native
// run uses.
#include <cstdio>
#include <iostream>

#include "affinity/report.hpp"
#include "apps/video.hpp"

int main() {
  using namespace orwl;
  std::puts("== Fig. 1: communication matrix of the video tracking "
            "application (30 tasks, HD) ==\n");

  apps::VideoParams params = apps::video_hd();
  const tm::CommMatrix m = apps::video_comm_matrix(params);
  std::cout << aff::render_comm_matrix(m) << '\n';

  const auto names = apps::video_task_names(params);
  std::puts("task legend:");
  for (std::size_t t = 0; t < names.size(); ++t) {
    std::printf("  %2zu: %s\n", t, names[t].c_str());
  }
  std::printf("\ntotal communication volume per frame: %.1f MiB\n",
              m.total_volume() / (1024.0 * 1024.0));
  return 0;
}
