// Microbenchmarks of the ORWL runtime primitives: FIFO lock cycling,
// reader sharing and the control-plane hand-off cost.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "runtime/control_plane.hpp"
#include "runtime/request_queue.hpp"

namespace {

using namespace orwl::rt;

void BM_WriteCycleUncontended(benchmark::State& state) {
  RequestQueue q;
  Ticket t = q.enqueue(AccessMode::Write);
  for (auto _ : state) {
    q.acquire(t);
    t = q.reinsert_and_release(t, AccessMode::Write);
  }
}
BENCHMARK(BM_WriteCycleUncontended);

void BM_WriteCycleWithControlPlane(benchmark::State& state) {
  ControlPlane cp(2);
  cp.start();
  RequestQueue q;
  q.set_control_plane(&cp);
  Ticket t = q.enqueue(AccessMode::Write);
  for (auto _ : state) {
    q.acquire(t);
    t = q.reinsert_and_release(t, AccessMode::Write);
  }
  cp.stop();
}
BENCHMARK(BM_WriteCycleWithControlPlane);

void BM_ContendedRing(benchmark::State& state) {
  // N threads iterate on one queue: the full lock hand-off path.
  const int contenders = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RequestQueue q;
    std::vector<Ticket> tickets;
    for (int i = 0; i < contenders; ++i) {
      tickets.push_back(q.enqueue(AccessMode::Write));
    }
    std::vector<std::thread> threads;
    state.ResumeTiming();
    for (int i = 0; i < contenders; ++i) {
      threads.emplace_back([&q, t = tickets[static_cast<std::size_t>(i)]]()
                               mutable {
        for (int k = 0; k < 200; ++k) {
          q.acquire(t);
          t = q.reinsert_and_release(t, AccessMode::Write);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  state.SetItemsProcessed(state.iterations() * contenders * 200);
}
BENCHMARK(BM_ContendedRing)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ReaderSharingGrant(benchmark::State& state) {
  // One writer followed by N readers: measures the group-grant path.
  const int readers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RequestQueue q;
    const Ticket w = q.enqueue(AccessMode::Write);
    std::vector<Ticket> rs;
    for (int i = 0; i < readers; ++i) {
      rs.push_back(q.enqueue(AccessMode::Read));
    }
    q.release(w);
    for (Ticket r : rs) {
      q.acquire(r);
      q.release(r);
    }
  }
}
BENCHMARK(BM_ReaderSharingGrant)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
