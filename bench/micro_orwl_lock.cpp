// Microbenchmarks of the ORWL runtime primitives: FIFO lock cycling,
// reader sharing and the control-plane hand-off cost.
//
// The contended benches use manual timing: contender threads are spawned
// outside the measured window and wait on a start gate, so the clock only
// covers the lock hand-off traffic, not thread creation. Set
// ORWL_BENCH_JSON=<path> to also write the results as JSON (see
// bench_util.hpp); CI archives BENCH_micro_orwl_lock.json from this.
#include <atomic>
#include <cstdint>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "orwl/orwl.hpp"

namespace {

using namespace orwl::rt;

constexpr int kHandOffsPerThread = 200;

/// Run one contended round: every thread cycles acquire ->
/// reinsert_and_release on `q` with its given ticket/mode. Returns the
/// wall time of the hand-off traffic only (threads are already spawned
/// and parked on the start gate when the clock starts).
double contended_round_seconds(RequestQueue& q,
                               const std::vector<Ticket>& tickets,
                               const std::vector<AccessMode>& modes) {
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(tickets.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    threads.emplace_back([&q, &go, t = tickets[i], m = modes[i]]() mutable {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int k = 0; k < kHandOffsPerThread; ++k) {
        q.acquire(t);
        t = q.reinsert_and_release(t, m);
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void BM_WriteCycleUncontended(benchmark::State& state) {
  RequestQueue q;
  Ticket t = q.enqueue(AccessMode::Write);
  for (auto _ : state) {
    q.acquire(t);
    t = q.reinsert_and_release(t, AccessMode::Write);
  }
  orwl::bench::annotate_arena_counters(state);
  orwl::bench::annotate_parking_counters(state, q.futex_waits(),
                                         q.futex_wakes());
}
BENCHMARK(BM_WriteCycleUncontended);

void BM_WriteCycleWithControlPlane(benchmark::State& state) {
  ControlPlane cp(2);
  cp.start();
  RequestQueue q;
  q.set_control_plane(&cp);
  Ticket t = q.enqueue(AccessMode::Write);
  for (auto _ : state) {
    q.acquire(t);
    t = q.reinsert_and_release(t, AccessMode::Write);
  }
  cp.stop();
  orwl::bench::annotate_arena_counters(state);
  orwl::bench::annotate_parking_counters(
      state, q.futex_waits() + cp.futex_waits(),
      q.futex_wakes() + cp.futex_wakes());
}
BENCHMARK(BM_WriteCycleWithControlPlane);

void BM_ContendedRing(benchmark::State& state) {
  // N writer threads iterate on one queue: the full exclusive lock
  // hand-off path.
  const int contenders = static_cast<int>(state.range(0));
  std::uint64_t waits = 0;
  std::uint64_t wakes = 0;
  for (auto _ : state) {
    RequestQueue q;
    std::vector<Ticket> tickets;
    std::vector<AccessMode> modes;
    for (int i = 0; i < contenders; ++i) {
      tickets.push_back(q.enqueue(AccessMode::Write));
      modes.push_back(AccessMode::Write);
    }
    state.SetIterationTime(contended_round_seconds(q, tickets, modes));
    waits += q.futex_waits();
    wakes += q.futex_wakes();
  }
  state.SetItemsProcessed(state.iterations() * contenders *
                          kHandOffsPerThread);
  orwl::bench::annotate_arena_counters(state);
  orwl::bench::annotate_parking_counters(state, waits, wakes);
}
BENCHMARK(BM_ContendedRing)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_ContendedReaderGroup(benchmark::State& state) {
  // N readers + 1 writer iterate on one queue: shared (group) grants
  // alternate with exclusive ones, exercising the reader-group hand-off.
  const int readers = static_cast<int>(state.range(0));
  std::uint64_t waits = 0;
  std::uint64_t wakes = 0;
  for (auto _ : state) {
    RequestQueue q;
    std::vector<Ticket> tickets;
    std::vector<AccessMode> modes;
    tickets.push_back(q.enqueue(AccessMode::Write));
    modes.push_back(AccessMode::Write);
    for (int i = 0; i < readers; ++i) {
      tickets.push_back(q.enqueue(AccessMode::Read));
      modes.push_back(AccessMode::Read);
    }
    state.SetIterationTime(contended_round_seconds(q, tickets, modes));
    waits += q.futex_waits();
    wakes += q.futex_wakes();
  }
  state.SetItemsProcessed(state.iterations() * (readers + 1) *
                          kHandOffsPerThread);
  orwl::bench::annotate_arena_counters(state);
  orwl::bench::annotate_parking_counters(state, waits, wakes);
}
BENCHMARK(BM_ContendedReaderGroup)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_ReaderSharingGrant(benchmark::State& state) {
  // One writer followed by N readers: measures the group-grant path.
  const int readers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RequestQueue q;
    const Ticket w = q.enqueue(AccessMode::Write);
    std::vector<Ticket> rs;
    for (int i = 0; i < readers; ++i) {
      rs.push_back(q.enqueue(AccessMode::Read));
    }
    q.release(w);
    for (Ticket r : rs) {
      q.acquire(r);
      q.release(r);
    }
  }
  orwl::bench::annotate_arena_counters(state);
}
BENCHMARK(BM_ReaderSharingGrant)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

ORWL_BENCH_MAIN();
