// Microbenchmark of the blocked DGEMM kernel (the MKL substitute).
#include "bench_util.hpp"

#include <vector>

#include "apps/dgemm.hpp"
#include "support/rng.hpp"

namespace {

void BM_Dgemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  orwl::support::SplitMix64 rng(1);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (auto& x : a) x = rng.uniform();
  for (auto& x : b) x = rng.uniform();
  for (auto _ : state) {
    orwl::apps::dgemm(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dgemm)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_DgemmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  orwl::support::SplitMix64 rng(2);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (auto& x : a) x = rng.uniform();
  for (auto& x : b) x = rng.uniform();
  for (auto _ : state) {
    orwl::apps::dgemm_naive(n, n, n, a.data(), n, b.data(), n, c.data(),
                            n);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_DgemmNaive)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ORWL_BENCH_MAIN();
