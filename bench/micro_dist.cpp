// Hand-off latency of one distributed ORWL write cycle: how much does
// the wire add on top of the in-process request queue?
//
// Every benchmark measures the same loop — a one-shot write Handle
// enqueued standalone, acquired, the first word bumped, released — so
// the three flavours differ only in what sits between the handle and
// the RequestQueue:
//
//   BM_HandoffIntra/N  - rt::Location in-process (the queue itself)
//   BM_HandoffShm/N    - dist::RemoteLocation over the shm transport
//                        (SPSC rings + futex doorbells, same host)
//   BM_HandoffTcp/N    - dist::RemoteLocation over tcp loopback
//                        (length-prefixed frames through epoll)
//
// N is the location payload in bytes: the remote cycle ships the whole
// payload twice (GRANT carries the bytes out, DATA writes them back),
// so the large arg exposes the copy/serialisation cost while the small
// one is pure protocol round-trip.
//
// CI's bench-smoke job reruns this and gates with tools/bench_compare.py
// against the committed BENCH_micro_dist.json, normalising every
// benchmark's items_per_second by BM_HandoffIntra/8 from the same file
// so dev-box vs CI-runner speed cancels out and only the wire-overhead
// *shape* is compared.
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "dist/registry.hpp"
#include "dist/remote.hpp"
#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"
#include "dist/transport.hpp"
#include "runtime/handle.hpp"
#include "runtime/location.hpp"

namespace {

using namespace orwl;

/// One full ORWL write cycle against any location (local or remote
/// mirror): the unit of work every benchmark times.
void write_cycle(rt::Location& loc) {
  rt::Handle h;
  h.insert_standalone(loc, rt::AccessMode::Write);
  rt::Section sec(h);
  ++*sec.as<std::uint64_t>();
}

void BM_HandoffIntra(benchmark::State& state) {
  rt::Location loc{0, 0, 0};
  loc.scale(static_cast<std::size_t>(state.range(0)));
  std::memset(loc.data(), 0, loc.size());
  for (auto _ : state) {
    write_cycle(loc);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["payload_bytes"] = static_cast<double>(loc.size());
}

/// Home + client in one process, but every cycle still crosses the full
/// transport: REQ_WRITE and DATA+RELEASE on the wire, the granter
/// thread proxying into the real queue, GRANT carrying the payload back.
struct DistFixture {
  rt::Location loc{0, 0, 0};
  dist::Registry reg;
  std::unique_ptr<dist::Client> client;
  rt::Location* remote = nullptr;

  DistFixture(dist::DistMode mode, std::size_t payload) {
    loc.scale(payload);
    std::memset(loc.data(), 0, loc.size());
    reg.export_location("cell", &loc);
    std::string url;
    if (mode == dist::DistMode::Shm) {
      static std::atomic<int> counter{0};
      auto transport = std::make_unique<dist::ShmServerTransport>(
          "orwl-bench-" + std::to_string(getpid()) + "-" +
              std::to_string(counter.fetch_add(1)),
          /*ring_slots=*/1024);
      url = "orwl+shm://" + transport->address() + "/cell";
      reg.serve(std::move(transport));
    } else {
      auto transport =
          std::make_unique<dist::TcpServerTransport>(/*port=*/0);
      url = "orwl://" + transport->address() + "/cell";
      reg.serve(std::move(transport));
    }
    client = dist::Client::connect(url);
    remote = &client->attach("cell");
  }

  ~DistFixture() {
    client->close();
    reg.stop();
  }
};

void run_dist(benchmark::State& state, dist::DistMode mode) {
  DistFixture fx(mode, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    write_cycle(*fx.remote);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["payload_bytes"] = static_cast<double>(fx.loc.size());
  const dist::Registry::Stats s = fx.reg.stats();
  state.counters["grants_sent"] = static_cast<double>(s.grants_sent);
  state.counters["orphans_reclaimed"] =
      static_cast<double>(s.orphans_reclaimed);
}

void BM_HandoffShm(benchmark::State& state) {
  run_dist(state, dist::DistMode::Shm);
}

void BM_HandoffTcp(benchmark::State& state) {
  run_dist(state, dist::DistMode::Tcp);
}

BENCHMARK(BM_HandoffIntra)->Arg(8)->Arg(65536);
BENCHMARK(BM_HandoffShm)->Arg(8)->Arg(65536);
BENCHMARK(BM_HandoffTcp)->Arg(8)->Arg(65536);

}  // namespace

ORWL_BENCH_MAIN()
