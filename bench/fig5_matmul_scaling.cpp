// Fig. 5: "FLOP/s performances of the Matrix multiplication
// implementations" (log-log in the paper).
//
// 16384x16384 doubles; series ORWL / ORWL (Affinity) / MKL /
// MKL (scatter) / MKL (compact) over core counts on both machines.
// Shapes to compare: every series scales inside one socket (~95 GF at 8
// cores on SMP12E5, ~65 GF on SMP20E7); the MKL-style baselines stagnate
// beyond one socket regardless of scatter/compact; ORWL with the affinity
// module keeps scaling to ~1 TF / ~0.5 TF.
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"

namespace {

constexpr std::size_t kN = 16384;

void run_machine(const orwl::sim::MachineModel& m,
                 const std::vector<std::size_t>& cores) {
  using namespace orwl;
  std::printf("-- %s --\n", m.name.c_str());
  support::TextTable t;
  t.header({"Nb Cores", "ORWL", "ORWL (Affinity)", "MKL", "MKL (scatter)",
            "MKL (compact)"});
  for (std::size_t nc : cores) {
    const sim::Workload orwl_w = apps::matmul_orwl_workload(kN, nc);
    const sim::Workload mkl_w = apps::matmul_mkl_workload(kN, nc);

    const auto orwl_native =
        simulate(m, orwl_w, sim::BindSpec::os_scheduled());
    const auto orwl_aff =
        simulate(m, orwl_w, bench::treematch_bind(m, orwl_w));
    const auto mkl_native =
        simulate(m, mkl_w, sim::BindSpec::os_scheduled());
    const auto mkl_scatter = simulate(
        m, mkl_w, bench::strategy_bind(tm::Strategy::ScatterCores, m, mkl_w));
    // KMP_AFFINITY=compact packs hyperthread siblings first - exactly
    // what the paper blames for its compute-bound weakness.
    const auto mkl_compact = simulate(
        m, mkl_w, bench::strategy_bind(tm::Strategy::Compact, m, mkl_w));

    t.row({std::to_string(nc), bench::fmt_gflops(orwl_native.gflops()),
           bench::fmt_gflops(orwl_aff.gflops()),
           bench::fmt_gflops(mkl_native.gflops()),
           bench::fmt_gflops(mkl_scatter.gflops()),
           bench::fmt_gflops(mkl_compact.gflops())});
  }
  std::printf("%s   (GFLOP/s, higher is better)\n\n", t.render().c_str());
}

}  // namespace

int main() {
  using orwl::sim::MachineModel;
  std::puts("== Fig. 5: matrix multiplication FLOP/s ==");
  std::printf("   %zux%zu doubles, block-cyclic vs shared-B GEMM\n\n", kN,
              kN);
  run_machine(MachineModel::smp12e5(), {1, 2, 4, 8, 16, 32, 64, 96});
  run_machine(MachineModel::smp20e7(), {1, 2, 4, 8, 16, 32, 64, 160});
  return 0;
}
