// Microbenchmark of the measurement-driven re-placement engine
// (ORWL_REPLACE): a deliberately mis-declared workload whose declared
// communication matrix is the transpose of its actual traffic, run under
// the three replacement policies.
//
// The workload: N tasks on a ring whose edges alternate between two
// kinds of pairs.
//
//   cold pairs (2k, 2k+1)         — share a LARGE location, exchanged
//                                   once per iteration. Declared heavy,
//                                   actually light.
//   hot pairs  (2k+1, 2k+2 mod N) — share a SMALL location, exchanged
//                                   kHotExchanges times per iteration.
//                                   Declared light, actually heavy.
//
// Any grouping that keeps the cold pairs together must cut hot edges
// and vice versa, so Algorithm 1 on the declared matrix splits hot
// pairs across the machine. The meter sees the truth at run time; auto
// mode must recover (most of) the placement quality an oracle with the
// true matrix would reach.
//
// Reported counters (deterministic, host-speed independent):
//
//   cost_oracle    modeled_cost of tree_match on the TRUE matrix
//   cost_final     modeled_cost of the placement the run ended with
//   recovery       cost_oracle / cost_final   (1.0 = oracle quality)
//   replacements   how many times the engine re-placed
//
// CI's bench-smoke gate (tools/bench_compare.py --min-recovery) requires
// recovery >= 0.9 for the auto policy; the off policy demonstrates the
// gap the engine closes. Set ORWL_BENCH_JSON=<path> for JSON output.
#include <cstddef>
#include <vector>

#include "bench_util.hpp"
#include "orwl/orwl.hpp"

namespace {

using namespace orwl;

constexpr std::size_t kTasks = 16;  // 8 cold pairs, 8 hot pairs
constexpr std::size_t kIters = 48;
constexpr std::size_t kHotExchanges = 32;
constexpr std::size_t kColdBytes = 8192;  // declared-heavy, actually cold
constexpr std::size_t kHotBytes = 2048;   // declared-light, actually hot

/// The TRUE per-iteration communication matrix of the workload above.
tm::CommMatrix true_matrix() {
  tm::CommMatrix m(kTasks);
  for (std::size_t k = 0; k < kTasks / 2; ++k) {
    m.set(2 * k, 2 * k + 1, static_cast<double>(kColdBytes));
    m.set(2 * k + 1, (2 * k + 2) % kTasks,
          static_cast<double>(kHotExchanges * kHotBytes));
  }
  return m;
}

/// Run the mis-declared workload under `mode`; returns the runtime
/// placement the program finished with.
tm::Placement run_workload(const topo::Topology& machine,
                           rt::ReplaceMode mode, rt::ProgramStats* stats) {
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::On;
  o.bind_threads = false;  // placement-only: CI hosts are tiny
  o.locations_per_task = 2;
  o.acquire_timeout_ms = 60000;
  o.replace = mode;
  o.replace_interval = 2;
  o.replace_threshold = 0.1;

  Program prog(kTasks, o);
  for (TaskId t = 0; t < kTasks; ++t) {
    prog.set_task_body(t, [](Task& task) {
      const TaskId t = task.id();
      // Cold pair (2k, 2k+1): the even task owns slot 0.
      WriteLink<std::byte[]> cold_w;
      ReadLink<std::byte[]> cold_r;
      if (t % 2 == 0) {
        task.my<std::byte[]>(0).scale(kColdBytes);
        cold_w = task.write<std::byte[]>(loc(t, 0), 0);
      } else {
        cold_r = task.read<std::byte[]>(loc(t - 1, 0), 1);
      }
      // Hot pair (2k+1, 2k+2 mod N): the odd task owns slot 1; its even
      // ring successor reads it.
      WriteLink<std::byte[]> hot_w;
      ReadLink<std::byte[]> hot_r;
      if (t % 2 == 1) {
        task.my<std::byte[]>(1).scale(kHotBytes);
        hot_w = task.write<std::byte[]>(loc(t, 1), 0);
      } else {
        hot_r = task.read<std::byte[]>(loc((t + kTasks - 1) % kTasks, 1), 1);
      }
      task.schedule();
      task.run_iterations(kIters, [&](std::size_t) {
        if (t % 2 == 0) {
          WriteGuard<std::byte[]> g(cold_w);
        } else {
          ReadGuard<std::byte[]> g(cold_r);
        }
        for (std::size_t e = 0; e < kHotExchanges; ++e) {
          if (t % 2 == 1) {
            WriteGuard<std::byte[]> g(hot_w);
          } else {
            ReadGuard<std::byte[]> g(hot_r);
          }
        }
      });
    });
  }
  prog.run();
  *stats = prog.stats();
  return prog.runtime().placement();
}

void bench_replace(benchmark::State& state, rt::ReplaceMode mode) {
  const topo::Topology machine = topo::make_smp20e7();
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  const tm::CommMatrix truth = true_matrix();
  const tm::Placement oracle = tm::tree_match(machine, truth);
  const double cost_oracle = tm::modeled_cost(machine, truth, oracle);

  double cost_final = 0.0;
  rt::ProgramStats stats;
  for (auto _ : state) {
    const tm::Placement final = run_workload(machine, mode, &stats);
    cost_final = tm::modeled_cost(machine, truth, final);
  }
  // Hand-offs per second: every exchange is a release -> acquire pair.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kIters *
      static_cast<std::int64_t>(kTasks / 2) * (kHotExchanges + 1) * 2);

  state.counters["cost_oracle"] = cost_oracle;
  state.counters["cost_final"] = cost_final;
  state.counters["recovery"] = cost_final > 0.0
                                   ? cost_oracle / cost_final
                                   : 1.0;  // 0 cost: nothing to recover
  state.counters["replacements"] = static_cast<double>(stats.replacements);
  state.counters["replace_triggers"] =
      static_cast<double>(stats.replace_triggers);
  // Arena + parking counters of the last run: CI gates
  // arena_node_misses == 0 on this fixture (emulated nodes are not
  // misses; a real mis-bound slab would be).
  bench::annotate_runtime_counters(state, stats);
}

void BM_MisdeclaredWorkload_off(benchmark::State& state) {
  bench_replace(state, rt::ReplaceMode::Off);
}
BENCHMARK(BM_MisdeclaredWorkload_off)->Unit(benchmark::kMillisecond);

void BM_MisdeclaredWorkload_passive(benchmark::State& state) {
  bench_replace(state, rt::ReplaceMode::Passive);
}
BENCHMARK(BM_MisdeclaredWorkload_passive)->Unit(benchmark::kMillisecond);

void BM_MisdeclaredWorkload_auto(benchmark::State& state) {
  bench_replace(state, rt::ReplaceMode::Auto);
}
BENCHMARK(BM_MisdeclaredWorkload_auto)->Unit(benchmark::kMillisecond);

}  // namespace

ORWL_BENCH_MAIN();
