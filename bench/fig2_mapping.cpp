// Fig. 2: "Task allocation on 4 socket NUMA machine of the video tracking
// application". The 30 video-tracking tasks are mapped by Algorithm 1 on
// the 2-blade, 4-socket, 32-core machine; the 2 spare cores are
// automatically reserved for control threads.
#include <cstdio>
#include <iostream>

#include "affinity/affinity.hpp"
#include "affinity/report.hpp"
#include "apps/video.hpp"
#include "topo/machines.hpp"

int main() {
  using namespace orwl;
  std::puts("== Fig. 2: task allocation on the 4-socket, 32-core machine "
            "==\n");

  const topo::Topology machine = topo::make_fig2_machine();
  apps::VideoParams params = apps::video_hd();
  const tm::CommMatrix m = apps::video_comm_matrix(params);

  aff::ComputeOptions opts;
  opts.num_control_threads = 8;  // the runtime's control threads
  const tm::Placement placement = aff::compute_placement(m, machine, opts);

  std::cout << aff::render_mapping(machine, placement,
                                   apps::video_task_names(params));

  std::printf("\ncontrol policy: %s (paper: \"cores 22 and 23 are "
              "automatically reserved for control threads\")\n",
              to_string(placement.control_policy));
  std::printf("modeled communication cost (bytes x hops): %.3g\n",
              tm::modeled_cost(machine, m, placement));
  const tm::Placement compact =
      tm::place_strategy(tm::Strategy::CompactCores, machine, 30);
  std::printf("  vs compact-cores:                        %.3g\n",
              tm::modeled_cost(machine, m, compact));
  const tm::Placement scatter =
      tm::place_strategy(tm::Strategy::ScatterCores, machine, 30);
  std::printf("  vs scatter-cores:                        %.3g\n",
              tm::modeled_cost(machine, m, scatter));
  return 0;
}
