// Micro-benchmark of topo::MemBind / topo::NumaBuffer: what NUMA-local
// location memory buys over remote or first-touch pages.
//
// Three stream variants over the same buffer size:
//
//   first_touch - unbound pages, faulted in by the streaming thread
//                 (what Location buffers were before the membind work)
//   local       - pages bound to the streaming thread's own node
//   remote      - pages bound to another node (the "task placed on node 1,
//                 buffer stuck on node 0" failure mode)
//
// plus the cost of an explicit migrate_to() round trip, i.e. what a
// grant-time transfer costs the control thread.
//
// On a multi-node machine `local` beats `remote` by the interconnect
// factor (Table I: NUMAlink5/6). On 1-node or sandboxed hosts the remote
// binding is necessarily emulated (tag-only) and the variants converge —
// the bench labels such runs "emulated" so the numbers are not
// misread as a NUMA result.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "topo/binding.hpp"
#include "topo/cpuset.hpp"
#include "topo/membind.hpp"

namespace {

using orwl::topo::MemBind;

/// Pin the bench thread so "its node" stays fixed across iterations, and
/// report that node (0 when the host cannot tell).
int pin_and_local_node() {
  static const int node = [] {
    orwl::topo::bind_current_thread(orwl::topo::CpuSet::single(0));
    const int n = MemBind::node_of_cpu(0);
    return n >= 0 ? n : 0;
  }();
  return node;
}

/// Next host node id after `local` in the (possibly sparse) node id
/// cycle; equals `local` on 1-node hosts.
int remote_node_of(int local) {
  const std::vector<int> ids = MemBind::host_node_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == local) return ids[(i + 1) % ids.size()];
  }
  return ids.front();
}

/// One read-modify-write pass over the buffer, 8 bytes at a time.
std::uint64_t stream_pass(std::byte* data, std::size_t bytes) {
  auto* words = reinterpret_cast<std::uint64_t*>(data);
  const std::size_t n = bytes / sizeof(std::uint64_t);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    words[i] += 1;
    sum += words[i];
  }
  return sum;
}

void run_stream(benchmark::State& state, int node, const char* kind) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  MemBind buf = MemBind::allocate(bytes, node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream_pass(buf.data(), bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(std::string(kind) +
                 (buf.emulated() && node >= 0 ? " (emulated)" : ""));
}

void BM_StreamFirstTouch(benchmark::State& state) {
  pin_and_local_node();
  run_stream(state, MemBind::kAnyNode, "first_touch");
}
BENCHMARK(BM_StreamFirstTouch)->Arg(1 << 20)->Arg(1 << 24);

void BM_StreamLocalBound(benchmark::State& state) {
  run_stream(state, pin_and_local_node(), "local");
}
BENCHMARK(BM_StreamLocalBound)->Arg(1 << 20)->Arg(1 << 24);

void BM_StreamRemoteBound(benchmark::State& state) {
  const int local = pin_and_local_node();
  const int remote = remote_node_of(local);
  run_stream(state, remote, remote != local ? "remote" : "remote=local");
}
BENCHMARK(BM_StreamRemoteBound)->Arg(1 << 20)->Arg(1 << 24);

void BM_MigrateRoundTrip(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const int local = pin_and_local_node();
  const int remote = remote_node_of(local);
  MemBind buf = MemBind::allocate(bytes, local);
  benchmark::DoNotOptimize(stream_pass(buf.data(), bytes));  // fault in
  for (auto _ : state) {
    buf.migrate_to(remote);
    buf.migrate_to(local);
  }
  // Two migrations per iteration.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(bytes));
  std::string label = buf.emulated() ? "emulated" : "move_pages";
  if (remote == local) label += " remote=local";
  state.SetLabel(label);
}
BENCHMARK(BM_MigrateRoundTrip)->Arg(1 << 20)->Arg(1 << 24);

}  // namespace

ORWL_BENCH_MAIN()
