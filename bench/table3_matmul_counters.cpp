// Table III: "Accumulated hardware/software counters of matrix
// multiplication on SMP12E5 (64 cores)".
//
// Paper values for reference:
//                       L3 miss(G)  stalls(G)  CPU mig.  ctx sw.
//   ORWL                102         8110       28963     153265
//   ORWL (Affinity)     13.8        980        0         125368
//   MKL                 140         8850       486       2863
//   MKL (scatter)       99          8140       0         2750
//   MKL (compact)       89          8520       0         3001
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"

int main() {
  using namespace orwl;
  std::puts("== Table III: matmul hardware/software counters, SMP12E5, 64 "
            "cores ==\n");

  const sim::MachineModel m = sim::MachineModel::smp12e5();
  const sim::Workload orwl_w = apps::matmul_orwl_workload(16384, 64);
  const sim::Workload mkl_w = apps::matmul_mkl_workload(16384, 64);

  support::TextTable t;
  t.header({"", "Billions of L3 misses", "Billions of stalled cycles",
            "context switches", "CPU migrations"});
  t.row(bench::counter_row(
      "ORWL", simulate(m, orwl_w, sim::BindSpec::os_scheduled())));
  t.row(bench::counter_row(
      "ORWL (Affinity)",
      simulate(m, orwl_w, bench::treematch_bind(m, orwl_w))));
  t.row(bench::counter_row(
      "MKL", simulate(m, mkl_w, sim::BindSpec::os_scheduled())));
  t.row(bench::counter_row(
      "MKL (Affinity scatter)",
      simulate(m, mkl_w,
               bench::strategy_bind(tm::Strategy::ScatterCores, m, mkl_w))));
  t.row(bench::counter_row(
      "MKL (Affinity compact)",
      simulate(m, mkl_w,
               bench::strategy_bind(tm::Strategy::Compact, m, mkl_w))));
  std::printf("%s\n", t.render().c_str());
  std::puts("paper shape check: ORWL+affinity has by far the fewest "
            "misses/stalls; the MKL variants stay miss-heavy regardless\n"
            "of binding; migrations vanish whenever threads are bound.");
  return 0;
}
