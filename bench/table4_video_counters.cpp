// Table IV: "Accumulated hardware/software counters of video tracking on
// SMP12E5 (30 cores, HD video)".
//
// Paper values for reference:
//                      ORWL    ORWL(Aff)  OpenMP  OpenMP(Aff)
//   L3 misses (G)      158     49         151     120
//   stalled cyc (G)    160     83         840     660
//   context switches   413821  329263     99778   22241
//   CPU migrations     61390   0          15960   0
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"

int main() {
  using namespace orwl;
  std::puts("== Table IV: video tracking counters, SMP12E5, 30 cores, HD "
            "==\n");

  const sim::MachineModel m =
      restricted(sim::MachineModel::smp12e5(), 4);
  apps::VideoParams params = apps::video_hd();
  params.frames = 1024;  // a long enough clip for counter accumulation
  const sim::Workload orwl_w = apps::video_orwl_workload(params);
  const sim::Workload omp_w = apps::video_forkjoin_workload(params);

  support::TextTable t;
  t.header({"", "Billions of L3 misses", "Billions of stalled cycles",
            "context switches", "CPU migrations"});
  t.row(bench::counter_row(
      "ORWL", simulate(m, orwl_w, sim::BindSpec::os_scheduled())));
  t.row(bench::counter_row(
      "ORWL (Affinity)",
      simulate(m, orwl_w, bench::treematch_bind(m, orwl_w))));
  t.row(bench::counter_row(
      "OpenMP", simulate(m, omp_w, sim::BindSpec::os_scheduled())));
  t.row(bench::counter_row("OpenMP (Affinity)",
                           bench::best_omp_affinity(m, omp_w)));
  std::printf("%s\n", t.render().c_str());
  std::puts("paper shape check: the affinity placement cuts ORWL misses "
            "and stalls strongly; ORWL context switches exceed OpenMP's;\n"
            "migrations are zero for all bound configurations.");
  return 0;
}
