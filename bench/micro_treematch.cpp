// Microbenchmark backing the paper's claim that "the runtime overhead is
// kept negligible for current SMP machines" (Sec. IV-A, footnote 2):
// Algorithm 1's running time as the thread count grows, with the Auto
// engine switching from the exact to the greedy grouping.
#include "bench_util.hpp"

#include "affinity/affinity.hpp"
#include "support/rng.hpp"
#include "topo/machines.hpp"
#include "treematch/treematch.hpp"

namespace {

using namespace orwl;

tm::CommMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  tm::CommMatrix m(n);
  support::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, static_cast<double>(rng.below(1 << 20)));
    }
  }
  return m;
}

void BM_TreeMatchAuto(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const topo::Topology topo = topo::make_smp12e5();
  const tm::CommMatrix m = random_matrix(threads, 42);
  tm::Options opts;
  opts.num_control_threads = threads / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm::tree_match(topo, m, opts));
  }
}
BENCHMARK(BM_TreeMatchAuto)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(96)
    ->Arg(192)->Arg(384)->Unit(benchmark::kMillisecond);

void BM_GroupingGreedy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const tm::CommMatrix m = random_matrix(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tm::group_processes(m, 8, tm::GroupingEngine::Greedy));
  }
}
BENCHMARK(BM_GroupingGreedy)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_GroupingExactSmall(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const tm::CommMatrix m = random_matrix(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tm::group_processes(m, 2, tm::GroupingEngine::Exact));
  }
}
BENCHMARK(BM_GroupingExactSmall)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_DependencyExtraction(benchmark::State& state) {
  // Cost of turning a frozen graph into a matrix (dependency_get).
  const std::size_t tasks = static_cast<std::size_t>(state.range(0));
  orwl::rt::TaskGraph g;
  g.num_tasks = tasks;
  g.locations_per_task = 4;
  g.locations.resize(tasks * 4);
  for (std::size_t l = 0; l < g.locations.size(); ++l) {
    g.locations[l].id = l;
    g.locations[l].owner = l / 4;
    g.locations[l].bytes = 4096;
    g.locations[l].accesses.push_back(
        {l / 4, orwl::rt::AccessMode::Write, 0});
    g.locations[l].accesses.push_back(
        {(l / 4 + 1) % tasks, orwl::rt::AccessMode::Read, 1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(orwl::aff::comm_matrix_from_graph(g));
  }
}
BENCHMARK(BM_DependencyExtraction)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

ORWL_BENCH_MAIN();
