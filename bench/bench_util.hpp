// Shared helpers of the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (Sec. VI) and prints the corresponding rows/series. The
// scenarios mirror the paper's configurations:
//
//   ORWL             - the ORWL application, threads left to the OS
//   ORWL (Affinity)  - same, placed by Algorithm 1 (ORWL_AFFINITY=1)
//   OpenMP           - fork-join baseline, unbound
//   OpenMP (Affinity)- fork-join baseline, best of the OMP_PLACES=cores
//                      close/spread bindings (the paper reports only the
//                      best OpenMP strategy)
//   MKL / MKL(scatter) / MKL(compact) - the shared-B GEMM under no
//                      binding / KMP_AFFINITY=scatter / =compact
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "support/table.hpp"
#include "treematch/strategies.hpp"

// Google-Benchmark helpers, only for the micro_* targets (ORWL_USE_GBENCH
// is set by bench/CMakeLists.txt): including <benchmark/benchmark.h> drags
// in a link dependency through its global stream initializer, which the
// figure/table harnesses must not pay.
#ifdef ORWL_USE_GBENCH
#include <benchmark/benchmark.h>

#include "runtime/arena.hpp"
#include "runtime/program.hpp"
#include "runtime/request_queue.hpp"

namespace orwl::bench {

/// Attach the process-default arena's memory counters to a benchmark's
/// JSON row. Micro benches whose queues draw from rt::Arena::
/// runtime_default() call this once per benchmark; bench_compare.py's
/// --require-zero gate reads the keys (a non-zero arena_node_misses
/// means a node-bound slab landed on the wrong node).
inline void annotate_arena_counters(benchmark::State& state) {
  const rt::Arena::Stats s = rt::Arena::runtime_default().stats();
  state.counters["arena_bytes"] = static_cast<double>(s.bytes_reserved);
  state.counters["arena_refills"] = static_cast<double>(s.refills);
  state.counters["arena_node_misses"] = static_cast<double>(s.node_misses);
}

/// Attach accumulated parking counters (zero on the ORWL_FUTEX=0
/// condvar path, so the JSON also records which path the run took).
inline void annotate_parking_counters(benchmark::State& state,
                                      std::uint64_t futex_waits,
                                      std::uint64_t futex_wakes) {
  state.counters["futex_waits"] = static_cast<double>(futex_waits);
  state.counters["futex_wakes"] = static_cast<double>(futex_wakes);
}

/// Program-level variant: arena + parking counters from ProgramStats
/// (per-shard arenas summed by the runtime). Used by the fixture-driven
/// benches (micro_replace on smp20e7) that the node-miss gate watches.
inline void annotate_runtime_counters(benchmark::State& state,
                                      const rt::ProgramStats& stats) {
  state.counters["arena_bytes"] = static_cast<double>(stats.arena_bytes);
  state.counters["arena_refills"] = static_cast<double>(stats.arena_refills);
  state.counters["arena_node_misses"] =
      static_cast<double>(stats.arena_node_misses);
  annotate_parking_counters(state, stats.futex_waits, stats.futex_wakes);
}

/// Drop-in replacement for BENCHMARK_MAIN() used by the micro_* benches:
/// when ORWL_BENCH_JSON=<path> is set, machine-readable results are also
/// written to <path> (--benchmark_out=<path> --benchmark_out_format=json)
/// while the console reporter stays untouched. CI's bench-smoke job uses
/// this to collect BENCH_*.json artifacts without per-invocation flag
/// plumbing; explicit --benchmark_out flags on the command line win.
inline int bench_main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_arg;
  std::string fmt_arg;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  const char* json_path = std::getenv("ORWL_BENCH_JSON");
  if (json_path != nullptr && *json_path != '\0' && !has_out) {
    out_arg = std::string("--benchmark_out=") + json_path;
    fmt_arg = "--benchmark_out_format=json";
    args.push_back(out_arg.data());
    args.push_back(fmt_arg.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace orwl::bench

#define ORWL_BENCH_MAIN()                                  \
  int main(int argc, char** argv) {                        \
    return orwl::bench::bench_main(argc, argv);            \
  }
#endif  // ORWL_USE_GBENCH

namespace orwl::bench {

/// Placement by Algorithm 1 for a workload (control threads included).
inline sim::BindSpec treematch_bind(const sim::MachineModel& m,
                                    const sim::Workload& w) {
  tm::Options opts;
  opts.num_control_threads = w.control_threads;
  return sim::BindSpec::bound(tm::tree_match(m.topology, w.comm, opts));
}

/// Placement by one of the generic strategies.
inline sim::BindSpec strategy_bind(tm::Strategy s,
                                   const sim::MachineModel& m,
                                   const sim::Workload& w) {
  return sim::BindSpec::bound(
      tm::place_strategy(s, m.topology, w.num_threads, &w.comm));
}

/// The paper's "OpenMP (affinity)": best result across the close and
/// spread places=cores bindings.
inline sim::SimResult best_omp_affinity(const sim::MachineModel& m,
                                        const sim::Workload& w) {
  const sim::SimResult close =
      sim::simulate(m, w, strategy_bind(tm::Strategy::CompactCores, m, w));
  const sim::SimResult spread =
      sim::simulate(m, w, strategy_bind(tm::Strategy::ScatterCores, m, w));
  return close.seconds <= spread.seconds ? close : spread;
}

inline std::string fmt_secs(double s) {
  return support::format_double(s, s < 10 ? 2 : 1);
}

inline std::string fmt_gflops(double g) {
  return support::format_double(g, g < 100 ? 1 : 0);
}

/// Counter row formatting consistent with Tables II-IV.
inline std::vector<std::string> counter_row(const std::string& name,
                                            const sim::SimResult& r) {
  return {name, support::format_double(r.counters.l3_misses / 1e9, 1),
          support::format_double(r.counters.stalled_cycles / 1e9, 0),
          support::format_si(r.counters.context_switches, 1),
          support::format_si(r.counters.cpu_migrations, 1)};
}

}  // namespace orwl::bench
