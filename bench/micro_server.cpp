// Open-loop SLO bench of the multi-tenant server: a video tenant and an
// lk23 tenant co-resident on the smp20e7 fixture, each fed a
// deterministic Poisson request trace. Reports per-tenant latency
// percentiles (p50/p99/p999, measured from the *scheduled* arrival so
// overload queueing is charged, not hidden), offered vs completed
// throughput, a saturation ceiling, and the per-tenant ProgramStats
// rollups.
//
// CI's bench-smoke job runs this on a tiny trace and gates p99_ms with
// tools/bench_compare.py --max-latency; BENCH_micro_server.json is the
// committed dev snapshot starting the SLO trajectory.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "server/driver.hpp"
#include "server/handlers.hpp"
#include "server/server.hpp"
#include "topo/machines.hpp"

namespace {

using namespace orwl;
using namespace orwl::server;

/// Small-but-real request bodies: one video request tracks 2 frames on
/// a 10-task pipeline, one lk23 request runs 2 sweeps on a 2x2 grid.
apps::VideoParams video_request() {
  apps::VideoParams p;
  p.width = 96;
  p.height = 72;
  p.frames = 2;
  p.gmm_splits = 2;
  p.dilates = 1;
  p.ccl_splits = 1;
  return p;
}

ServerOptions server_options(const topo::Topology* t) {
  ServerOptions o;
  o.topology = t;
  o.bind_threads = false;  // smp20e7 is a fixture: no real OS binding
  o.base.bind_threads = false;
  o.base.affinity = rt::AffinityMode::Off;
  o.base.acquire_timeout_ms = 60000;
  return o;
}

void annotate_lane(benchmark::State& state, const std::string& prefix,
                   const LaneResult& lane) {
  state.counters[prefix + "_p50_ms"] = lane.p50_ms;
  state.counters[prefix + "_p99_ms"] = lane.p99_ms;
  state.counters[prefix + "_p999_ms"] = lane.p999_ms;
  state.counters[prefix + "_offered"] = static_cast<double>(lane.offered);
  state.counters[prefix + "_completed"] =
      static_cast<double>(lane.completed);
  state.counters[prefix + "_shed"] = static_cast<double>(lane.shed);
  state.counters[prefix + "_offered_rps"] = lane.offered_rps;
  state.counters[prefix + "_completed_rps"] = lane.completed_rps;
}

void annotate_tenant_rollup(benchmark::State& state,
                            const TenantStats& st) {
  const std::string& p = st.name;
  state.counters[p + "_control_events"] =
      static_cast<double>(st.runtime.control_events);
  state.counters[p + "_data_transfers"] =
      static_cast<double>(st.runtime.data_transfers);
  state.counters[p + "_futex_waits"] =
      static_cast<double>(st.runtime.futex_waits);
  state.counters[p + "_arena_bytes"] =
      static_cast<double>(st.runtime.arena_bytes);
  state.counters[p + "_arena_node_misses"] =
      static_cast<double>(st.runtime.arena_node_misses);
  state.counters[p + "_peak_workers"] =
      static_cast<double>(st.peak_workers);
}

/// Two tenants, open loop: the SLO scenario of the server harness.
void BM_server_two_tenant_open_loop(benchmark::State& state) {
  const topo::Topology machine = topo::make_smp20e7();
  const double duration_ms = static_cast<double>(state.range(0));

  double p99_worst = 0;
  for (auto _ : state) {
    Server server(server_options(&machine));

    TenantSpec video;
    video.name = "video";
    video.width_pus = 16;
    video.min_workers = 1;
    video.max_workers = 2;
    video.handler = make_video_handler(video_request());

    TenantSpec lk23;
    lk23.name = "lk23";
    lk23.width_pus = 8;
    lk23.min_workers = 1;
    lk23.max_workers = 2;
    lk23.handler = make_lk23_handler(/*n=*/34, /*iters=*/2, 2, 2);

    const std::vector<TenantId> lanes = {server.admit(video),
                                         server.admit(lk23)};

    // Offered load well under one request-service-time per arrival, so
    // the steady-state percentiles read service latency + light queueing.
    const auto trace =
        make_open_loop_trace({/*video rps=*/20.0, /*lk23 rps=*/60.0},
                             duration_ms, /*seed=*/42);
    const ReplayResult res = replay(server, lanes, trace);

    annotate_lane(state, "video", res.lanes[0]);
    annotate_lane(state, "lk23", res.lanes[1]);
    // The CI SLO gate reads the worst lane.
    p99_worst = std::max(res.lanes[0].p99_ms, res.lanes[1].p99_ms);
    state.counters["p99_ms"] = p99_worst;
    state.counters["wall_ms"] = res.wall_ms;

    // Saturation ceiling of the cheaper tenant (back-to-back submits).
    state.counters["saturation_rps"] =
        measure_saturation_rps(server, lanes[1], 32);

    double node_misses = 0;
    for (const TenantStats& st : server.stats()) {
      annotate_tenant_rollup(state, st);
      node_misses += static_cast<double>(st.runtime.arena_node_misses);
    }
    // All-tenant sum, so the standard --require-zero NUMA gate applies.
    state.counters["arena_node_misses"] = node_misses;
  }
}

BENCHMARK(BM_server_two_tenant_open_loop)
    ->Arg(300)   // smoke trace: ~6 video + ~18 lk23 requests
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

ORWL_BENCH_MAIN()
