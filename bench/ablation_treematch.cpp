// Ablation of Algorithm 1's design choices (DESIGN.md §4):
//   1. control-thread management (hyperthread siblings / spare cores)
//      on vs. off,
//   2. exact vs. greedy grouping engine,
//   3. Algorithm 1 vs. the generic strategies,
// measured both as modeled hop-cost and as simulated execution time on
// the two testbeds, using the real application matrices.
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"

namespace {

using namespace orwl;

void ablate(const char* title, const sim::MachineModel& m,
            const sim::Workload& w) {
  std::printf("-- %s on %s (%zu threads, %zu controls) --\n", title,
              m.name.c_str(), w.num_threads, w.control_threads);
  support::TextTable t;
  t.header({"variant", "modeled hop-cost", "simulated time (s)",
            "L3 misses (G)"});

  auto emit = [&](const char* name, const tm::Placement& p) {
    const auto r = simulate(m, w, sim::BindSpec::bound(p));
    t.row({name,
           support::format_si(tm::modeled_cost(m.topology, w.comm, p), 2),
           bench::fmt_secs(r.seconds),
           support::format_double(r.counters.l3_misses / 1e9, 2)});
  };

  tm::Options base;
  base.num_control_threads = w.control_threads;
  emit("Algorithm 1 (full)", tm::tree_match(m.topology, w.comm, base));

  tm::Options no_control = base;
  no_control.manage_control_threads = false;
  emit("- without control management",
       tm::tree_match(m.topology, w.comm, no_control));

  tm::Options greedy = base;
  greedy.engine = tm::GroupingEngine::Greedy;
  emit("- greedy grouping only",
       tm::tree_match(m.topology, w.comm, greedy));

  emit("compact-cores (close)",
       tm::place_strategy(tm::Strategy::CompactCores, m.topology,
                          w.num_threads));
  emit("scatter-cores (spread)",
       tm::place_strategy(tm::Strategy::ScatterCores, m.topology,
                          w.num_threads));
  emit("compact (KMP, siblings first)",
       tm::place_strategy(tm::Strategy::Compact, m.topology,
                          w.num_threads));
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  std::puts("== Ablation: Algorithm 1 design choices ==\n");

  const sim::MachineModel m12 = sim::MachineModel::smp12e5();
  const sim::MachineModel m20 = sim::MachineModel::smp20e7();

  const sim::Workload lk23 = apps::lk23_orwl_workload(16384, 100, 64);
  ablate("LK23 (64 ops)", m12, lk23);

  apps::VideoParams vp = apps::video_hd();
  vp.frames = 128;
  const sim::Workload video = apps::video_orwl_workload(vp);
  ablate("video tracking", sim::restricted(m12, 4), video);
  ablate("video tracking", sim::restricted(m20, 4), video);

  const sim::Workload mm = apps::matmul_orwl_workload(16384, 64);
  ablate("matmul ring (64 tasks)", m20, mm);
  return 0;
}
