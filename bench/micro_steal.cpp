// Microbenchmark of the topology-aware steal executor (rt::StealExecutor)
// under three seed distributions on the SMP20E7 fixture topology.
//
// Eight workers are placed four-per-node on two NUMA nodes of the
// fixture (PUs 0-3 on node 0, PUs 8-11 on node 1). Every work item is a
// fixed ~150us latency (a sleep, deliberately: CI runners and dev
// containers have few cores, and a sleeping item still overlaps across
// workers, so the measurement isolates *distribution quality* — how well
// the executor spreads a lopsided worklist — from host core count).
//
//   balanced    — items dealt round-robin over all 8 workers: stealing
//                 has nothing to fix; measures executor overhead.
//   skewed      — all items split between worker 0 (node 0) and worker 4
//                 (node 1): each node must spread its half locally.
//   single_hot  — all items on worker 0: node 1 can only help by
//                 stealing remotely.
//
// Each distribution runs under ORWL_STEAL=off (the static baseline:
// every worker drains only its own deque — exactly what the static
// task model would do) and under the full locality order (all).
// The `all` variants additionally report:
//
//   speedup_vs_off       wall-time(off) / wall-time(all) for one run,
//                        measured in-process right before the timed loop
//   local_steals         steals served by a same-NUMA-node victim
//   remote_steals        steals that crossed nodes
//
// CI's bench-smoke job gates the skewed row (tools/bench_compare.py
// --min-ratio): locality must hold (local_steals >= remote_steals) and
// stealing must actually beat the static split. Set
// ORWL_BENCH_JSON=<path> for machine-readable output.
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/steal_executor.hpp"
#include "topo/machines.hpp"

namespace {

using orwl::rt::StealExecutor;
using orwl::rt::StealMode;

constexpr std::size_t kWorkers = 8;
constexpr std::uint64_t kItems = 240;
constexpr std::chrono::microseconds kItemLatency{150};

enum class Dist { Balanced, Skewed, SingleHot };

/// Worker w -> logical PU: four per node on the fixture's first two
/// NUMA nodes (8 single-PU cores per node, so PUs 0-7 are node 0 and
/// PUs 8-15 node 1).
std::vector<StealExecutor::WorkerSpec> worker_specs() {
  std::vector<StealExecutor::WorkerSpec> specs(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    specs[w].pu = static_cast<int>(w < 4 ? w : 8 + (w - 4));
  }
  return specs;
}

std::size_t seed_worker(Dist dist, std::uint64_t item) {
  switch (dist) {
    case Dist::Balanced:
      return item % kWorkers;
    case Dist::Skewed:
      return item % 2 == 0 ? 0 : 4;  // one hot deque per node
    case Dist::SingleHot:
      return 0;
  }
  return 0;
}

/// One full session: construct, seed, run all workers to termination.
/// \return The executor's counter snapshot for the run.
StealExecutor::Stats run_once(const orwl::topo::Topology& machine,
                              Dist dist, StealMode mode) {
  StealExecutor::Config cfg;
  cfg.mode = mode;
  StealExecutor ex(machine, worker_specs(), cfg);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ex.seed(seed_worker(dist, i), i);
  }
  const StealExecutor::ItemFn fn = [](std::uint64_t,
                                      StealExecutor::WorkerContext&) {
    std::this_thread::sleep_for(kItemLatency);
  };
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&ex, &fn, w] { ex.run_worker(w, fn); });
  }
  for (auto& t : threads) t.join();
  return ex.stats();
}

double timed_run_seconds(const orwl::topo::Topology& machine, Dist dist,
                         StealMode mode) {
  const auto start = std::chrono::steady_clock::now();
  run_once(machine, dist, mode);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void BM_Steal(benchmark::State& state, Dist dist, StealMode mode) {
  const orwl::topo::Topology machine = orwl::topo::make_smp20e7();

  // The headline counter: how much the steal executor gains over the
  // static split of the same worklist, measured once, in-process, so
  // the two runs share the host's conditions.
  double speedup = 0.0;
  if (mode != StealMode::Off) {
    const double off = timed_run_seconds(machine, dist, StealMode::Off);
    const double with = timed_run_seconds(machine, dist, mode);
    speedup = with > 0.0 ? off / with : 0.0;
  }

  StealExecutor::Stats total;
  for (auto _ : state) {
    const StealExecutor::Stats s = run_once(machine, dist, mode);
    total.executed += s.executed;
    total.local_steals += s.local_steals;
    total.remote_steals += s.remote_steals;
    total.parks += s.parks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kItems));
  state.counters["executed"] = static_cast<double>(total.executed);
  state.counters["local_steals"] = static_cast<double>(total.local_steals);
  state.counters["remote_steals"] = static_cast<double>(total.remote_steals);
  state.counters["parks"] = static_cast<double>(total.parks);
  if (mode != StealMode::Off) {
    state.counters["speedup_vs_off"] = speedup;
  }
  orwl::bench::annotate_arena_counters(state);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Steal, balanced_off, Dist::Balanced, StealMode::Off)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Steal, balanced_all, Dist::Balanced, StealMode::All)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Steal, skewed_off, Dist::Skewed, StealMode::Off)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Steal, skewed_all, Dist::Skewed, StealMode::All)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Steal, single_hot_off, Dist::SingleHot, StealMode::Off)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Steal, single_hot_all, Dist::SingleHot, StealMode::All)
    ->Unit(benchmark::kMillisecond);

ORWL_BENCH_MAIN()
