// Native end-to-end proof on the HOST machine: the real ORWL runtime with
// real thread binding, running the three applications under the
// strategies of the paper. This is not a reproduction of a specific
// figure (the host is far smaller than the testbeds) — it demonstrates
// that the whole stack (runtime + affinity module + binding) works on
// real hardware, and that the placement ordering holds natively.
#include <chrono>
#include <cstdio>
#include <functional>

#include "apps/lk23.hpp"
#include "apps/matmul.hpp"
#include "apps/video.hpp"
#include "pool/thread_pool.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "topo/binding.hpp"
#include "topo/detect.hpp"

namespace {

using namespace orwl;

double timed_median(const std::function<void()>& fn, int repeats = 3) {
  std::vector<double> times;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    times.push_back(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }
  return support::median(times);
}

rt::ProgramOptions orwl_opts(bool affinity) {
  rt::ProgramOptions o;
  o.affinity = affinity ? rt::AffinityMode::On : rt::AffinityMode::Off;
  o.acquire_timeout_ms = 120000;
  return o;
}

}  // namespace

int main() {
  const topo::Topology host = topo::detect_host();
  std::printf("== Native runs on the host: %s ==\n\n",
              host.summary().c_str());
  const std::size_t cores = std::min<std::size_t>(host.num_cores(), 16);

  // ---- LK23 --------------------------------------------------------------
  {
    const std::size_t n = 1538;  // 1536^2 interior
    const std::size_t iters = 12;
    const std::size_t by = 4, bx = 4;
    support::TextTable t;
    t.header({"LK23 1536^2 x12", "seconds"});
    t.row({"sequential", support::format_double(timed_median([&] {
             auto p = apps::Lk23Problem::generate(n);
             apps::lk23_sequential(p, iters);
           }), 3)});
    t.row({"ORWL", support::format_double(timed_median([&] {
             auto p = apps::Lk23Problem::generate(n);
             apps::lk23_orwl(p, iters, by, bx, orwl_opts(false));
           }), 3)});
    t.row({"ORWL (affinity)", support::format_double(timed_median([&] {
             auto p = apps::Lk23Problem::generate(n);
             apps::lk23_orwl(p, iters, by, bx, orwl_opts(true));
           }), 3)});
    t.row({"fork-join pool", support::format_double(timed_median([&] {
             auto p = apps::Lk23Problem::generate(n);
             pool::ThreadPool pool(cores);
             apps::lk23_forkjoin(p, iters, by, bx, pool);
           }), 3)});
    std::printf("%s\n", t.render().c_str());
  }

  // ---- matmul --------------------------------------------------------------
  {
    const std::size_t n = 1024;
    const std::size_t tasks = 8;
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    support::TextTable t;
    t.header({"matmul 1024^2", "seconds", "GFLOP/s"});
    auto emit = [&](const char* name, double secs) {
      t.row({name, support::format_double(secs, 3),
             support::format_double(flops / secs / 1e9, 1)});
    };
    emit("sequential", timed_median([&] {
      auto p = apps::MatmulProblem::generate(n);
      apps::matmul_sequential(p);
    }));
    emit("ORWL", timed_median([&] {
      auto p = apps::MatmulProblem::generate(n);
      apps::matmul_orwl(p, tasks, orwl_opts(false));
    }));
    emit("ORWL (affinity)", timed_median([&] {
      auto p = apps::MatmulProblem::generate(n);
      apps::matmul_orwl(p, tasks, orwl_opts(true));
    }));
    emit("pool (scatter-cores)", timed_median([&] {
      auto p = apps::MatmulProblem::generate(n);
      pool::PoolOptions po;
      po.strategy = tm::Strategy::ScatterCores;
      pool::ThreadPool pool(tasks, po);
      apps::matmul_forkjoin(p, pool);
    }));
    std::printf("%s\n", t.render().c_str());
  }

  // ---- video --------------------------------------------------------------
  {
    apps::VideoParams p;
    p.width = 640;
    p.height = 360;
    p.frames = 24;
    p.gmm_splits = 8;
    p.ccl_splits = 4;
    support::TextTable t;
    t.header({"video 640x360 x24", "seconds", "FPS"});
    auto emit = [&](const char* name, const apps::VideoResult& r) {
      t.row({name, support::format_double(r.seconds, 3),
             support::format_double(r.fps(), 1)});
    };
    emit("sequential", apps::video_sequential(p));
    emit("ORWL", apps::video_orwl(p, orwl_opts(false)));
    emit("ORWL (affinity)", apps::video_orwl(p, orwl_opts(true)));
    {
      pool::ThreadPool pool(cores);
      emit("fork-join pool", apps::video_forkjoin(p, pool));
    }
    std::printf("%s\n", t.render().c_str());
  }
  return 0;
}
