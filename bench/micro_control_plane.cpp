// Contention microbenchmark of the sharded control plane: P producer
// threads each cycle a private lock through the hand-off path
// (acquire -> reinsert_and_release -> control-thread grant) at the
// highest rate they can. With a single shard every hand-off serializes
// through one mutex + condvar; with one shard per NUMA node of the
// SMP20E7 fixture the queues are routed to independent shards and the
// hand-off throughput scales with the producers.
//
// Counters: items = completed lock cycles; "inline" = grants the plane
// performed inline (saturation/stop fallback, should stay near zero).
#include "bench_util.hpp"

#include <cstddef>
#include <thread>
#include <vector>

#include "orwl/orwl.hpp"
#include "topo/shard.hpp"

namespace {

using namespace orwl::rt;

constexpr int kCyclesPerProducer = 2000;

// Arg 0: number of shards (1 = the pre-sharding baseline).
// Arg 1: number of producer threads.
// Control threads are identical across variants (kControlThreads for
// both), so the comparison isolates the event-queue sharding — the
// baseline is a single queue served by 20 threads, not a thread-starved
// strawman.
constexpr std::size_t kControlThreads = 20;

void BM_ShardedHandOff(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto producers = static_cast<std::size_t>(state.range(1));
  const auto topo = orwl::topo::make_smp20e7();
  const auto map = orwl::topo::make_shard_map(topo, shards);

  std::uint64_t inline_grants = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ControlPlaneOptions opts;
    opts.num_shards = shards;
    opts.num_threads = kControlThreads;
    ControlPlane cp(opts);
    cp.start();
    std::vector<RequestQueue> queues(producers);
    std::vector<Ticket> tickets(producers);
    for (std::size_t i = 0; i < producers; ++i) {
      queues[i].set_control_plane(&cp);
      // Route queue i as the runtime would: to the shard of the NUMA
      // node its producer lives on (producers spread node-major).
      const int pu = static_cast<int>((i * 8) % topo.num_pus());
      const int shard = map.shard_of(pu);
      queues[i].set_control_shard(
          shard >= 0 ? static_cast<std::size_t>(shard) : i % shards);
      tickets[i] = queues[i].enqueue(AccessMode::Write);
    }
    state.ResumeTiming();

    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t i = 0; i < producers; ++i) {
      threads.emplace_back([&queues, &tickets, i] {
        Ticket t = tickets[i];
        for (int k = 0; k < kCyclesPerProducer; ++k) {
          queues[i].acquire(t);
          t = queues[i].reinsert_and_release(t, AccessMode::Write);
        }
      });
    }
    for (auto& th : threads) th.join();

    state.PauseTiming();
    cp.stop();
    inline_grants += cp.inline_grants();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(producers) *
                          kCyclesPerProducer);
  state.counters["inline"] =
      benchmark::Counter(static_cast<double>(inline_grants));
}

// 1 shard vs one shard per SMP20E7 NUMA node, at rising producer counts.
BENCHMARK(BM_ShardedHandOff)
    ->ArgNames({"shards", "producers"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Args({1, 16})
    ->Args({20, 1})
    ->Args({20, 4})
    ->Args({20, 8})
    ->Args({20, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ORWL_BENCH_MAIN();
