// Fig. 4: "The processing times of Livermore Kernel 23 (log scale)".
//
// 100 iterations over a 16384x16384 matrix of doubles; 4 operation
// threads per block; series ORWL / ORWL (affinity) / OpenMP /
// OpenMP (affinity) over the core counts of the paper, on both modeled
// testbeds. Shapes to compare with the paper: all series scale within a
// socket; the unbound ones flatten beyond ~16 cores; ORWL+affinity keeps
// scaling, with a larger gap on the hyperthreaded SMP12E5.
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"

namespace {

constexpr std::size_t kN = 16384;
constexpr std::size_t kIters = 100;

void run_machine(const orwl::sim::MachineModel& m,
                 const std::vector<std::size_t>& cores) {
  using namespace orwl;
  std::printf("-- %s --\n", m.name.c_str());
  support::TextTable t;
  t.header({"Nb Cores", "ORWL", "ORWL (affinity)", "OpenMP",
            "OpenMP (affinity)"});
  for (std::size_t nc : cores) {
    const sim::Workload orwl_w =
        apps::lk23_orwl_workload(kN, kIters, nc);
    const sim::Workload omp_w =
        apps::lk23_forkjoin_workload(kN, kIters, nc);

    const auto orwl_native =
        simulate(m, orwl_w, sim::BindSpec::os_scheduled());
    const auto orwl_aff =
        simulate(m, orwl_w, bench::treematch_bind(m, orwl_w));
    const auto omp_native =
        simulate(m, omp_w, sim::BindSpec::os_scheduled());
    const auto omp_aff = nc == 1
                             ? omp_native
                             : bench::best_omp_affinity(m, omp_w);

    t.row({std::to_string(nc), bench::fmt_secs(orwl_native.seconds),
           bench::fmt_secs(orwl_aff.seconds),
           bench::fmt_secs(omp_native.seconds),
           bench::fmt_secs(omp_aff.seconds)});
  }
  std::printf("%s   (seconds, lower is better)\n\n", t.render().c_str());
}

}  // namespace

int main() {
  using orwl::sim::MachineModel;
  std::puts("== Fig. 4: Livermore Kernel 23 processing times ==");
  std::printf("   16384x16384 doubles, %zu iterations, 4 ops/block\n\n",
              kIters);
  run_machine(MachineModel::smp12e5(), {1, 8, 16, 32, 64, 96});
  run_machine(MachineModel::smp20e7(), {1, 8, 16, 32, 64, 128});
  return 0;
}
