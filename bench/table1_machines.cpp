// Table I: "The multi-core architectures used for the experiments".
// Prints the two modeled testbeds and their topology trees.
#include <cstdio>
#include <iostream>

#include "sim/machine_model.hpp"
#include "support/table.hpp"

int main() {
  using namespace orwl;
  std::puts("== Table I: the multi-core architectures used for the "
            "experiments (modeled) ==\n");

  const sim::MachineModel a = sim::MachineModel::smp12e5();
  const sim::MachineModel b = sim::MachineModel::smp20e7();

  support::TextTable t;
  t.header({"Name", a.name, b.name});
  auto row = [&](const char* what, const std::string& va,
                 const std::string& vb) {
    t.row({what, va, vb});
  };
  auto num = [](double v, int prec = 0) {
    return support::format_double(v, prec);
  };
  row("Cores per socket", "8", "8");
  row("NUMA nodes",
      std::to_string(a.topology.at_depth(
          a.topology.depth_of_type(topo::ObjType::NumaNode)).size()),
      std::to_string(b.topology.at_depth(
          b.topology.depth_of_type(topo::ObjType::NumaNode)).size()));
  row("Total cores", std::to_string(a.topology.num_cores()),
      std::to_string(b.topology.num_cores()));
  row("Total PUs", std::to_string(a.topology.num_pus()),
      std::to_string(b.topology.num_pus()));
  row("Clock rate (MHz)", num(a.clock_ghz * 1000), num(b.clock_ghz * 1000));
  row("Hyper-Threading", a.topology.has_hyperthreads() ? "Yes" : "No",
      b.topology.has_hyperthreads() ? "Yes" : "No");
  row("L1 cache", support::format_bytes(
          static_cast<double>(a.topology.cache_size(topo::ObjType::L1)), 0),
      support::format_bytes(
          static_cast<double>(b.topology.cache_size(topo::ObjType::L1)), 0));
  row("L2 cache", support::format_bytes(
          static_cast<double>(a.topology.cache_size(topo::ObjType::L2)), 0),
      support::format_bytes(
          static_cast<double>(b.topology.cache_size(topo::ObjType::L2)), 0));
  row("L3 cache", support::format_bytes(
          static_cast<double>(a.topology.cache_size(topo::ObjType::L3)), 0),
      support::format_bytes(
          static_cast<double>(b.topology.cache_size(topo::ObjType::L3)), 0));
  row("Interconnect (GB/s)", num(a.interconnect_gbps, 1),
      num(b.interconnect_gbps, 1));
  row("OS scheduler model", to_string(a.os_policy), to_string(b.os_policy));
  std::cout << t.render() << '\n';

  std::cout << a.topology.render() << '\n';
  std::cout << b.topology.render() << '\n';
  std::cout << a.topology.summary() << '\n'
            << b.topology.summary() << '\n';
  return 0;
}
